#include "src/sim/telemetry.h"

#include <algorithm>
#include <cstdio>

namespace peel {

namespace {

std::string describe_stream(std::int32_t s, std::uint64_t tag) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "stream %d (collective %llu)", s,
                static_cast<unsigned long long>(tag));
  return buf;
}

}  // namespace

Telemetry::Telemetry(const TelemetryConfig& config, const Topology& topo)
    : config_(config),
      topo_(&topo),
      links_(topo.link_count()),
      nodes_(topo.node_count()) {}

Telemetry::StreamAccum& Telemetry::stream(std::int32_t s) {
  const auto idx = static_cast<std::size_t>(s);
  if (idx >= streams_.size()) streams_.resize(idx + 1);
  return streams_[idx];
}

void Telemetry::advance_depth(LinkAccum& a, Bytes new_depth, SimTime now) {
  a.depth_integral +=
      static_cast<double>(a.depth) * static_cast<double>(now - a.last_change);
  a.last_change = now;
  a.depth = new_depth;
  a.peak = std::max(a.peak, new_depth);
}

void Telemetry::on_stream_open(std::int32_t s, std::uint64_t tag,
                               const std::vector<NodeId>& receivers) {
  StreamAccum& st = stream(s);
  st.tag = tag;
  st.receivers = receivers;
}

void Telemetry::on_inject(std::int32_t s, int chunk, Bytes bytes) {
  stream(s).injected[chunk] += bytes;
}

void Telemetry::on_enqueue(LinkId l, std::int32_t s, Bytes bytes,
                           Bytes new_depth, SimTime now) {
  advance_depth(links_[static_cast<std::size_t>(l)], new_depth, now);
  stream(s).enqueued += bytes;
}

void Telemetry::on_ecn_mark(LinkId l) {
  ++links_[static_cast<std::size_t>(l)].ecn_marks;
}

void Telemetry::on_serialized(LinkId l, std::int32_t s, Bytes bytes,
                              Bytes new_depth, SimTime now) {
  LinkAccum& a = links_[static_cast<std::size_t>(l)];
  advance_depth(a, new_depth, now);
  a.bytes += bytes;
  ++a.segments;
  stream(s).serialized += bytes;
}

void Telemetry::on_queue_drop(LinkId l, std::int32_t s, Bytes bytes,
                              Bytes new_depth, SimTime now) {
  advance_depth(links_[static_cast<std::size_t>(l)], new_depth, now);
  stream(s).lost_queued += bytes;
}

void Telemetry::on_wire_drop(std::int32_t s, Bytes bytes) {
  stream(s).lost_wire += bytes;
}

void Telemetry::on_ingress_drop(std::int32_t s, Bytes bytes) {
  stream(s).lost_ingress += bytes;
}

void Telemetry::on_pause(LinkId l, SimTime now) {
  LinkAccum& a = links_[static_cast<std::size_t>(l)];
  ++a.pfc_pauses;
  if (a.pause_begin < 0) a.pause_begin = now;
}

void Telemetry::on_unpause(LinkId l, SimTime now) {
  LinkAccum& a = links_[static_cast<std::size_t>(l)];
  if (a.pause_begin < 0) return;
  a.pause_time += now - a.pause_begin;
  if (config_.record_trace) pauses_.push_back(PauseSpan{l, a.pause_begin, now});
  a.pause_begin = -1;
}

void Telemetry::on_node_buffer(NodeId n, Bytes depth) {
  NodeAccum& a = nodes_[static_cast<std::size_t>(n)];
  a.buffer_peak = std::max(a.buffer_peak, depth);
}

void Telemetry::on_cnp(std::int32_t s, NodeId receiver, SimTime now) {
  if (config_.record_trace) cnps_.push_back(CnpEvent{s, receiver, now});
}

void Telemetry::on_deliver(std::int32_t s, NodeId receiver, int chunk,
                           Bytes bytes) {
  stream(s).delivered[receiver][chunk] += bytes;
}

void Telemetry::on_stream_close(std::int32_t s, bool complete) {
  if (!complete) stream(s).closed_incomplete = true;
}

void Telemetry::on_reduce_open(std::int32_t s,
                               const std::vector<NodeId>& contributors) {
  StreamAccum& st = stream(s);
  st.reduce = true;
  st.contributors = contributors;
}

void Telemetry::on_reduce_target(std::int32_t s, int chunk, Bytes bytes) {
  StreamAccum& st = stream(s);
  st.reduce = true;  // note_chunk replicas may never see on_reduce_open
  st.reduce_target[chunk] = bytes;
}

void Telemetry::on_reduce_contribute(std::int32_t s, NodeId contributor,
                                     int chunk, Bytes bytes) {
  stream(s).contributed[contributor][chunk] += bytes;
}

void Telemetry::on_reduce_absorb(std::int32_t s, LinkId l, int chunk,
                                 Bytes bytes) {
  stream(s).absorbed[l][chunk] += bytes;
}

void Telemetry::on_reduce_emit(std::int32_t s, NodeId node, int chunk,
                               Bytes bytes) {
  stream(s).emitted[node][chunk] += bytes;
}

void Telemetry::sample(SimTime now) {
  QueueSample q;
  q.t = now;
  for (const LinkAccum& a : links_) {
    q.total_queued += a.depth;
    q.max_link_queued = std::max(q.max_link_queued, a.depth);
    if (a.depth > 0) ++q.queued_links;
    if (a.pause_begin >= 0) ++q.paused_links;
  }
  samples_.push_back(q);
}

namespace {

/// Anytime reduction-ledger checks: any account credited past the per-rank
/// target is a double-count (a rank contributing twice, a combiner absorbing
/// a duplicate child segment, or duplicate combined forwards).
void reduce_over_violations(std::int32_t id, std::uint64_t tag,
                            const std::unordered_map<int, Bytes>& target,
                            const char* what, NodeId where,
                            const std::unordered_map<int, Bytes>& account,
                            std::vector<std::string>& out) {
  for (const auto& [chunk, got] : account) {
    const auto t = target.find(chunk);
    const Bytes want = t == target.end() ? 0 : t->second;
    if (got <= want) continue;
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%s: %s %d accounts %lld bytes of chunk %d against a "
                  "per-rank target of %lld (reduction double-count)",
                  describe_stream(id, tag).c_str(), what, where,
                  static_cast<long long>(got), chunk,
                  static_cast<long long>(want));
    out.emplace_back(buf);
  }
}

}  // namespace

std::vector<std::string> Telemetry::over_delivery_violations() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const StreamAccum& st = streams_[i];
    const auto id = static_cast<std::int32_t>(i);
    if (st.reduce) {
      // Combining legitimately collapses k child segments into one, so the
      // injected-vs-delivered identity is replaced by the ledger: nothing —
      // contribution, absorption, combined forward, or a member's delivery
      // credit from the down multicast — may exceed the per-rank target.
      for (const auto& [node, chunks] : st.contributed) {
        reduce_over_violations(id, st.tag, st.reduce_target, "contributor",
                               node, chunks, out);
      }
      for (const auto& [link, chunks] : st.absorbed) {
        reduce_over_violations(id, st.tag, st.reduce_target, "child link",
                               static_cast<NodeId>(link), chunks, out);
      }
      for (const auto& [node, chunks] : st.emitted) {
        reduce_over_violations(id, st.tag, st.reduce_target, "combiner", node,
                               chunks, out);
      }
      for (const auto& [receiver, chunks] : st.delivered) {
        reduce_over_violations(id, st.tag, st.reduce_target, "receiver",
                               receiver, chunks, out);
      }
      continue;
    }
    for (const auto& [receiver, chunks] : st.delivered) {
      for (const auto& [chunk, got] : chunks) {
        const auto want = st.injected.find(chunk);
        const Bytes injected = want == st.injected.end() ? 0 : want->second;
        if (got > injected) {
          char buf[160];
          std::snprintf(buf, sizeof buf,
                        "%s: receiver %d got %lld bytes of chunk %d but only "
                        "%lld were injected (duplicate replication)",
                        describe_stream(static_cast<std::int32_t>(i), st.tag)
                            .c_str(),
                        receiver, static_cast<long long>(got), chunk,
                        static_cast<long long>(injected));
          out.emplace_back(buf);
        }
      }
    }
  }
  return out;
}

std::vector<std::string> Telemetry::conservation_violations() const {
  std::vector<std::string> out = over_delivery_violations();
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    const StreamAccum& st = streams_[i];
    const auto id = static_cast<std::int32_t>(i);
    // Hop-by-hop replication: everything put on a link either crossed it or
    // was dropped from its queue by a failure. Anything else is a byte stuck
    // in (or vanished from) an egress queue.
    if (st.enqueued != st.serialized + st.lost_queued) {
      char buf[200];
      std::snprintf(buf, sizeof buf,
                    "%s: %lld bytes enqueued on links but %lld serialized + "
                    "%lld dropped — %lld bytes unaccounted in egress queues",
                    describe_stream(id, st.tag).c_str(),
                    static_cast<long long>(st.enqueued),
                    static_cast<long long>(st.serialized),
                    static_cast<long long>(st.lost_queued),
                    static_cast<long long>(st.enqueued - st.serialized -
                                           st.lost_queued));
      out.emplace_back(buf);
    }
    // Exact delivery to the destination set. Two legitimate exemptions:
    // streams that lost segments to failures (recovery runs on new streams)
    // and streams their owner closed before completion (superseded — the
    // collective finished through another stream). Everything else must hit
    // the target exactly.
    const bool lossy =
        st.lost_queued > 0 || st.lost_wire > 0 || st.lost_ingress > 0;
    if (lossy || st.closed_incomplete) continue;
    if (st.reduce) {
      // Exactly-once at drain: every contributor injected its full share of
      // every chunk once, every observed ledger account (child absorption,
      // combined forward, member delivery credit) landed exactly on the
      // per-rank target. Under-absorption anywhere starves the pivot's down
      // multicast, so it shows up at every receiver, each of which is
      // checked against every target chunk.
      const auto expect = [&](const char* what, NodeId where, int chunk,
                              Bytes got, Bytes want) {
        if (got == want) return;
        char buf[200];
        std::snprintf(buf, sizeof buf,
                      "%s: %s %d accounts %lld of %lld target bytes of chunk "
                      "%d with no segment losses (reduction ledger)",
                      describe_stream(id, st.tag).c_str(), what, where,
                      static_cast<long long>(got), static_cast<long long>(want),
                      chunk);
        out.emplace_back(buf);
      };
      for (const auto& [chunk, want] : st.reduce_target) {
        if (want <= 0) continue;
        for (NodeId c : st.contributors) {
          Bytes got = 0;
          const auto rows = st.contributed.find(c);
          if (rows != st.contributed.end()) {
            const auto cell = rows->second.find(chunk);
            if (cell != rows->second.end()) got = cell->second;
          }
          expect("contributor", c, chunk, got, want);
        }
        for (NodeId r : st.receivers) {
          Bytes got = 0;
          const auto rows = st.delivered.find(r);
          if (rows != st.delivered.end()) {
            const auto cell = rows->second.find(chunk);
            if (cell != rows->second.end()) got = cell->second;
          }
          expect("receiver", r, chunk, got, want);
        }
      }
      for (const auto& [link, chunks] : st.absorbed) {
        for (const auto& [chunk, got] : chunks) {
          const auto t = st.reduce_target.find(chunk);
          expect("child link", static_cast<NodeId>(link), chunk, got,
                 t == st.reduce_target.end() ? 0 : t->second);
        }
      }
      for (const auto& [node, chunks] : st.emitted) {
        for (const auto& [chunk, got] : chunks) {
          const auto t = st.reduce_target.find(chunk);
          expect("combiner", node, chunk, got,
                 t == st.reduce_target.end() ? 0 : t->second);
        }
      }
      continue;
    }
    for (NodeId receiver : st.receivers) {
      const auto got_it = st.delivered.find(receiver);
      for (const auto& [chunk, injected] : st.injected) {
        Bytes got = 0;
        if (got_it != st.delivered.end()) {
          const auto c = got_it->second.find(chunk);
          if (c != got_it->second.end()) got = c->second;
        }
        if (got < injected) {
          char buf[180];
          std::snprintf(buf, sizeof buf,
                        "%s: receiver %d got %lld of %lld injected bytes of "
                        "chunk %d with no segment losses",
                        describe_stream(id, st.tag).c_str(), receiver,
                        static_cast<long long>(got),
                        static_cast<long long>(injected), chunk);
          out.emplace_back(buf);
        }
      }
    }
  }
  return out;
}

void Telemetry::merge_from(const Telemetry& other) {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkAccum& a = links_[i];
    const LinkAccum& b = other.links_[i];
    a.bytes += b.bytes;
    a.segments += b.segments;
    a.ecn_marks += b.ecn_marks;
    a.pfc_pauses += b.pfc_pauses;
    a.pause_time += b.pause_time;
    if (b.pause_begin >= 0) a.pause_begin = b.pause_begin;
    a.depth += b.depth;
    a.peak = std::max(a.peak, b.peak);
    a.depth_integral += b.depth_integral;
    a.last_change = std::max(a.last_change, b.last_change);
  }

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].buffer_peak =
        std::max(nodes_[i].buffer_peak, other.nodes_[i].buffer_peak);
  }

  if (other.streams_.size() > streams_.size()) {
    streams_.resize(other.streams_.size());
  }
  for (std::size_t i = 0; i < other.streams_.size(); ++i) {
    StreamAccum& a = streams_[i];
    const StreamAccum& b = other.streams_[i];
    // A domain outside the stream's footprint holds a default-constructed
    // stub accum (no on_stream_open); any domain that saw the open agrees on
    // the tag, so max() just skips the zeroed stubs.
    a.tag = std::max(a.tag, b.tag);
    a.receivers.insert(a.receivers.end(), b.receivers.begin(),
                       b.receivers.end());
    for (const auto& [chunk, bytes] : b.injected) a.injected[chunk] += bytes;
    for (const auto& [receiver, chunks] : b.delivered) {
      auto& mine = a.delivered[receiver];
      for (const auto& [chunk, bytes] : chunks) mine[chunk] += bytes;
    }
    a.enqueued += b.enqueued;
    a.serialized += b.serialized;
    a.lost_queued += b.lost_queued;
    a.lost_wire += b.lost_wire;
    a.lost_ingress += b.lost_ingress;
    a.closed_incomplete = a.closed_incomplete || b.closed_incomplete;
    // Reduction ledger: structure fields (contributor set, per-chunk target)
    // are identical in every domain that recorded them; accounts sum because
    // each (contributor / child link / combiner / root) has exactly one
    // writing domain.
    a.reduce = a.reduce || b.reduce;
    if (a.contributors.empty()) a.contributors = b.contributors;
    for (const auto& [chunk, bytes] : b.reduce_target) {
      a.reduce_target[chunk] = std::max(a.reduce_target[chunk], bytes);
    }
    for (const auto& [node, chunks] : b.contributed) {
      auto& mine = a.contributed[node];
      for (const auto& [chunk, bytes] : chunks) mine[chunk] += bytes;
    }
    for (const auto& [link, chunks] : b.absorbed) {
      auto& mine = a.absorbed[link];
      for (const auto& [chunk, bytes] : chunks) mine[chunk] += bytes;
    }
    for (const auto& [node, chunks] : b.emitted) {
      auto& mine = a.emitted[node];
      for (const auto& [chunk, bytes] : chunks) mine[chunk] += bytes;
    }
  }

  // Samples: merge-join on timestamp. Each link's depth (and pause state) is
  // tracked in exactly one domain, so same-instant samples add fieldwise.
  std::vector<QueueSample> merged;
  merged.reserve(samples_.size() + other.samples_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < samples_.size() || j < other.samples_.size()) {
    const bool take_mine =
        j == other.samples_.size() ||
        (i < samples_.size() && samples_[i].t < other.samples_[j].t);
    const bool take_theirs =
        !take_mine &&
        (i == samples_.size() || other.samples_[j].t < samples_[i].t);
    if (take_mine) {
      merged.push_back(samples_[i++]);
    } else if (take_theirs) {
      merged.push_back(other.samples_[j++]);
    } else {
      QueueSample s = samples_[i++];
      const QueueSample& o = other.samples_[j++];
      s.total_queued += o.total_queued;
      s.max_link_queued = std::max(s.max_link_queued, o.max_link_queued);
      s.queued_links += o.queued_links;
      s.paused_links += o.paused_links;
      merged.push_back(s);
    }
  }
  samples_ = std::move(merged);

  pauses_.insert(pauses_.end(), other.pauses_.begin(), other.pauses_.end());
  cnps_.insert(cnps_.end(), other.cnps_.begin(), other.cnps_.end());
}

TelemetrySummary Telemetry::summary(SimTime now) const {
  TelemetrySummary s;
  s.duration = now;
  s.links.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkAccum& a = links_[i];
    const Link& lk = topo_->link(static_cast<LinkId>(i));
    LinkTelemetry t;
    t.link = static_cast<LinkId>(i);
    t.src = lk.src;
    t.dst = lk.dst;
    t.kind = lk.kind;
    t.bytes = a.bytes;
    t.segments = a.segments;
    t.ecn_marks = a.ecn_marks;
    t.pfc_pauses = a.pfc_pauses;
    t.pfc_pause_time =
        a.pause_time + (a.pause_begin >= 0 ? now - a.pause_begin : 0);
    t.queue_peak = a.peak;
    const double closing =
        static_cast<double>(a.depth) * static_cast<double>(now - a.last_change);
    t.mean_queue_bytes =
        now > 0 ? (a.depth_integral + closing) / static_cast<double>(now) : 0.0;
    s.links.push_back(t);
  }

  for (NodeId n = 0; static_cast<std::size_t>(n) < topo_->node_count(); ++n) {
    if (!is_switch(topo_->kind(n))) continue;
    SwitchTelemetry t;
    t.node = n;
    t.kind = topo_->kind(n);
    t.buffer_peak = nodes_[static_cast<std::size_t>(n)].buffer_peak;
    for (LinkId l : topo_->out_links(n)) {
      const LinkTelemetry& lt = s.links[static_cast<std::size_t>(l)];
      t.forwarded_bytes += lt.bytes;
      t.forwarded_segments += lt.segments;
      t.ecn_marks += lt.ecn_marks;
      t.pfc_pauses += lt.pfc_pauses;
      t.pfc_pause_time += lt.pfc_pause_time;
    }
    s.switches.push_back(t);
  }

  s.samples = samples_;
  s.pauses = pauses_;
  // Close out still-open pause intervals so the trace shows them.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].pause_begin >= 0 && config_.record_trace) {
      s.pauses.push_back(
          PauseSpan{static_cast<LinkId>(i), links_[i].pause_begin, now});
    }
  }
  s.cnps = cnps_;
  return s;
}

}  // namespace peel
