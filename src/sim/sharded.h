// Pod-sharded simulation engine: conservative parallel discrete-event
// execution over the pod decomposition of a topology (src/topology/shard_plan.h).
//
// ## Execution model
//
// The fabric is split into one *domain* per pod plus one for the core tier
// (pod < 0). Each domain owns a full Network replica over the full topology
// but executes only the events whose handler state lives in its domain:
//
//   - a link's serializer (egress queue, busy/blocked bits, FinishTx) runs
//     in the domain of the link's *source* node;
//   - a node's shared buffer, per-ingress accounting, and Arrive handling
//     run in the node's domain;
//   - a stream's pump and congestion-control state run in the source node's
//     domain; per-receiver delivery progress runs in each receiver's domain.
//
// Exactly three event kinds can cross a domain boundary, and each carries a
// physical delay of at least one cross-domain link propagation:
//
//   - Arrive over a cross-domain link (delay = that link's propagation),
//   - CnpRate back to the sender (delay = SimConfig::cnp_delay, validated
//     against the lookahead at construction),
//   - PfcPause / PfcResume frames from the buffer-owning mirror side to the
//     serializer-owning side (delay = the ingress link's propagation).
//
// In-network reduce streams introduce no fourth kind: each injector paces in
// its contributor's domain, a combiner's absorb/emit runs in its node's
// domain (ReduceEmit schedules on the local queue and the links it emits on
// originate at that node), and only the Arrive hops between them cross.
//
// That minimum — the smallest propagation over cross-domain links — is the
// conservative lookahead L. The engine repeatedly: finds the global minimum
// pending timestamp W; if a control-plane closure is due at W it runs it
// sequentially (with every domain clock advanced to W); otherwise it runs
// every domain in parallel up to the horizon min(W + L, next control event),
// barriers, then drains the per-domain-pair mailboxes into the destination
// queues and replays collected delivery callbacks on the control queue.
//
// ## Determinism
//
// The domain decomposition is a pure function of the topology — the
// `threads` knob only sets how many workers execute the (fixed) domains, so
// results are byte-identical at any thread count:
//
//   - within a domain, the EventQueue's (t, seq) order is untouched;
//   - mailboxes drain in destination-major, source-domain-minor, FIFO order,
//     so the destination queue's sequence counter encodes exactly the
//     (t, source domain, seq) cross-domain merge rule;
//   - delivery callbacks replay on the control queue in (window, domain id,
//     collection order), and every domain RNG is seeded from the scenario
//     seed and its domain id alone.
//
// Relative to the single-queue engine the *timing* differs slightly — PFC
// frames and delivery notifications carry real wire delays that the solo
// engine applies instantaneously — so the sharded engine is selected
// explicitly (ScenarioConfig::shards > 0), never silently.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/network.h"
#include "src/topology/shard_plan.h"

namespace peel {

class ShardedNetwork final : public DataPlane {
 public:
  /// `threads` >= 1 is the worker count — an execution knob only (clamped to
  /// the domain count). Throws std::invalid_argument when the topology's
  /// cross-domain structure defeats conservative execution (a cross-domain
  /// link with zero propagation, or cnp_delay below the lookahead).
  ShardedNetwork(const Topology& topo, const SimConfig& config, int threads);
  ~ShardedNetwork() override;

  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  // --- DataPlane ----------------------------------------------------------
  void set_delivery_handler(
      std::function<void(const DeliveryEvent&)> handler) override {
    on_delivery_ = std::move(handler);
  }
  StreamId open_stream(StreamSpec spec) override;
  void send_chunk(StreamId stream, int chunk_index, Bytes bytes) override;
  std::vector<int> cancel_unsent_chunks(StreamId stream) override;
  void close_stream(StreamId stream) override;
  void on_duplex_failed(LinkId l) override;
  void on_duplex_restored(LinkId l) override;
  [[nodiscard]] bool stream_uses_link(StreamId s, LinkId l) const override;
  [[nodiscard]] StreamDiagnostic stream_diagnostic(StreamId s) const override;
  [[nodiscard]] Bytes link_bytes(LinkId l) const override;

  // --- engine surface (mirrors EventQueue/Network for the harness) --------
  /// Control-plane queue: collective submissions, fault events, recovery
  /// timers, and replayed delivery callbacks. Closures scheduled here run
  /// sequentially between parallel windows, with every domain clock advanced
  /// to the closure's timestamp first.
  [[nodiscard]] EventQueue& control() noexcept { return control_; }

  /// Runs until every domain queue and the control queue drain.
  void run();
  /// Runs events with timestamps <= `t`, then advances all clocks to `t`.
  void run_until(SimTime t);

  [[nodiscard]] bool empty() const;
  /// Latest clock across the control queue and all domains.
  [[nodiscard]] SimTime now() const;
  /// Total events processed across the control queue and all domains.
  [[nodiscard]] std::uint64_t events_processed() const;

  [[nodiscard]] int domain_count() const noexcept { return domain_total_; }
  [[nodiscard]] int worker_count() const noexcept { return workers_; }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }

  /// Adaptive-window execution counters. Dense control planes (fault
  /// storms, churny workloads) clamp every advance window to the next
  /// control event, so windows shrink until most hold events in a single
  /// domain; such a window runs inline on the coordinator thread
  /// (`windows_inline`) instead of paying a pool barrier round-trip, while
  /// multi-domain windows still fan out (`windows_parallel`). Diagnostics
  /// only — the split never changes results: a skipped domain's
  /// run_window would process nothing.
  [[nodiscard]] std::uint64_t windows_inline() const noexcept {
    return windows_inline_;
  }
  [[nodiscard]] std::uint64_t windows_parallel() const noexcept {
    return windows_parallel_;
  }

  // --- merged counters (sums / maxima over the domain replicas) -----------
  [[nodiscard]] Bytes total_bytes_serialized() const;
  [[nodiscard]] std::uint64_t segments_serialized() const;
  [[nodiscard]] std::uint64_t segments_marked() const;
  [[nodiscard]] std::uint64_t pfc_pauses() const;
  [[nodiscard]] std::uint64_t segments_lost() const;
  [[nodiscard]] std::uint64_t duplex_repairs() const;
  [[nodiscard]] Bytes max_queue_peak() const;
  /// Sum of per-domain combining-SRAM high-water marks. Combining state is
  /// domain-local (a combiner's arrivals and emits all run in its node's
  /// domain), so each domain's gauge peaks independently; the sum is an
  /// UPPER BOUND on the fabric-wide SRAM demand — the domains need not peak
  /// at the same instant, so the sum overstates what a single fabric-wide
  /// gauge (the solo engine's reduce_sram_peak) would read. Not
  /// shard-invariant. Use reduce_sram_peak_max_domain for a figure that is
  /// comparable across engines.
  [[nodiscard]] Bytes reduce_sram_peak() const;
  /// Largest single-domain combining-SRAM high-water mark — a LOWER BOUND on
  /// the fabric-wide peak (the true peak is at least the hottest domain's).
  /// This is the per-switch-budget-relevant figure: no individual switch ever
  /// held more than its domain's gauge, so solo and sharded cells can be
  /// compared on it (solo's single gauge lies in [max_domain, sum]).
  [[nodiscard]] Bytes reduce_sram_peak_max_domain() const;

  // --- telemetry ----------------------------------------------------------
  [[nodiscard]] bool telemetry_enabled() const;
  /// Forwards the series capacity hint to every domain's Telemetry.
  void reserve_series(std::size_t expected_samples);
  /// Merged cross-domain Telemetry (audit + summary); nullptr when disabled.
  /// Materialized on call — use after the run has quiesced, and reuse the
  /// returned pointer rather than calling repeatedly. Valid until the next
  /// call or destruction.
  [[nodiscard]] const Telemetry* merged_telemetry() const;

 private:
  struct DomainHook final : public CrossDomainHook {
    ShardedNetwork* owner = nullptr;
    int domain = -1;
    bool post(SimTime t, const SimEvent& ev) override;
  };

  struct Mail {
    SimTime t;
    SimEvent ev;
  };

  struct Domain {
    EventQueue queue;
    std::unique_ptr<Network> net;  // after queue: destroyed first (unbinds)
    DomainHook hook;
    /// outbox[dst]: cross-domain events generated here this window. Written
    /// only by the thread executing this domain; drained at the barrier.
    std::vector<std::vector<Mail>> outbox;
    /// Deliveries fired inside this domain this window, in firing order.
    std::vector<std::pair<SimTime, DeliveryEvent>> deliveries;
    /// A throw inside run_window, surfaced after the barrier.
    std::exception_ptr error;
  };

  struct StreamInfo {
    int src_domain = -1;
    /// Domains holding real (non-stub) replicas, ascending.
    std::vector<int> footprint;
    /// Reduce streams only: contributor index -> owning domain (CnpRate
    /// events carry the injector index, not a node). Empty = not a reduce
    /// stream.
    std::vector<int> injector_domain;
    /// Distinct owning domains of the above, ascending: the replicas whose
    /// send_chunk actually paces injectors (the rest only note_chunk).
    std::vector<int> injector_domains;
  };

  /// Routes a hook-posted event: false = local to `from` (schedule there),
  /// true = captured into from's outbox for another domain.
  bool route(int from, SimTime t, const SimEvent& ev);
  /// Window loop shared by run() / run_until().
  void advance(bool bounded, SimTime deadline);
  /// Runs every domain up to `horizon`, via the worker pool or inline.
  void run_domains(SimTime horizon);
  /// Moves outbox mail into destination queues (dst-major, src-minor, FIFO)
  /// and replays collected deliveries on the control queue at t + lookahead.
  void drain_windows();
  void worker_main(int wid);

  const Topology* topo_;
  ShardPlan plan_;
  SimConfig config_;
  int domain_total_ = 0;
  SimTime xdelay_ = 0;  ///< conservative lookahead; 0 = no cross-domain links

  std::vector<std::unique_ptr<Domain>> domains_;
  EventQueue control_;
  std::function<void(const DeliveryEvent&)> on_delivery_;
  std::vector<StreamInfo> streams_;

  // Worker pool: generation-counted start barrier + cumulative completion
  // counter. Workers spin (with yield back-off) because windows are short —
  // a condvar round-trip per window would dominate small fabrics.
  int workers_ = 1;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> go_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<bool> stop_{false};
  std::uint64_t windows_issued_ = 0;
  SimTime horizon_ = 0;  ///< published before each go_ bump
  std::uint64_t windows_inline_ = 0;    ///< single-domain windows, no barrier
  std::uint64_t windows_parallel_ = 0;  ///< windows run through run_domains

  mutable std::unique_ptr<Telemetry> merged_telem_;
};

}  // namespace peel
