// Simulation parameters. Defaults follow the paper's §4 "Congestion control"
// setup: 12 MB switch buffers, ECN marking between 5 kB and 200 kB with 1%
// maximum probability, PFC Stop at 11% free buffer with a 5-MTU hysteresis,
// and DCQCN-style rate control with PEEL's 50 µs sender-side guard timer.
#pragma once

#include <cstdint>

#include "src/common/units.h"

namespace peel {

/// Opt-in observability for the data plane (src/sim/telemetry.h). Disabled
/// by default: the hooks are passive (never draw randomness or schedule
/// behavior-changing events), so enabling them does not perturb results,
/// but the per-link accounting costs memory and a little time.
struct TelemetryConfig {
  bool enabled = false;
  /// Fixed-interval time-series sampling of fabric queue state (0 = off).
  /// The sampler stops once the event queue has no other work, so it never
  /// keeps a finished simulation alive.
  SimTime sample_interval = 0;
  /// Record PFC pause spans and CNP emissions for the Chrome-trace exporter
  /// (src/sim/trace.h). Off by default: traces grow with congestion events.
  bool record_trace = false;
};

struct DcqcnParams {
  /// Alpha EWMA gain. The canonical 1/256 assumes per-MTU CNPs; our
  /// serialization unit is a (much larger) segment, so the gain is scaled up
  /// to keep the per-byte reaction strength comparable.
  double g = 1.0 / 16.0;
  SimTime alpha_timer = 55 * kMicrosecond;    ///< alpha decay period
  SimTime increase_timer = 55 * kMicrosecond; ///< rate recovery period
  int fast_recovery_stages = 5;               ///< hyper-increase after F stages
  double additive_increase_fraction = 0.005;  ///< Rai as a fraction of line rate
  double min_rate_fraction = 0.01;            ///< rate floor
};

/// How a stream's source reacts to congestion notifications (§4).
enum class CnpMode : std::uint8_t {
  /// Classic DCQCN: each receiver rate-limits its own CNPs to one per 50 µs;
  /// the sender reacts to every CNP it gets. Fine for unicast, but a
  /// multicast sender hears every receiver's timer — CNPs multiply.
  ReceiverTimer,
  /// PEEL's replacement: receivers signal freely, the sender reacts at most
  /// once per guard interval.
  SenderGuard,
  /// Ablation: no coalescing anywhere; sender reacts to every CNP.
  Unthrottled,
};

/// Knobs of the flow-level (fluid) fidelity mode (src/sim/flow_network.h).
/// Streams are single-rate max-min fair flows; DCQCN/ECN/PFC dynamics are
/// folded into per-mode utilization caps applied when a flow shares a
/// bottleneck link. The defaults are fitted from cnp_dynamics.csv — the
/// steady-state (> 2 ms) per-flow goodput of two contending broadcasts on a
/// 100 Gbps fabric, as a fraction of the 50 Gbps fair share:
///   sender guard 50 µs : 42.6 / 50 ≈ 0.85
///   receiver timers    : 25.7 / 50 ≈ 0.51 (multicast CNP fan-in)
///   unthrottled        : 25.9 / 50 ≈ 0.52
/// Uncontended flows run at their max-min rate unscaled (DCQCN only backs
/// off on marks, and an unshared path does not mark).
struct FlowModelConfig {
  double guard_utilization = 0.85;
  /// ReceiverTimer with a single receiver (unicast — Ring hops, Orca
  /// relays): one receiver's 50 µs CNP timer is the classic DCQCN setup,
  /// which tracks its fair share about as well as the sender guard.
  double receiver_timer_unicast_utilization = 0.85;
  /// ReceiverTimer with multiple receivers: every receiver's timer fires
  /// independently, so the sender hears a multiplied CNP stream (the §4
  /// pathology the guard timer exists to fix).
  double receiver_timer_multicast_utilization = 0.51;
  double unthrottled_utilization = 0.52;
};

struct SimConfig {
  /// Serialization/queueing granularity. Smaller = higher fidelity, more
  /// events; 64 KiB keeps ECN behaviour meaningful against the 5–200 kB
  /// marking band.
  Bytes segment_bytes = 64 * kKiB;

  /// Shared buffer per switch (paper: 12 MB).
  Bytes switch_buffer_bytes = 12 * kMiB;

  // ECN / RED marking at egress enqueue (paper: 5 kB .. 200 kB, 1%).
  Bytes ecn_kmin = 5 * 1000;
  Bytes ecn_kmax = 200 * 1000;
  double ecn_pmax = 0.01;

  // PFC: pause upstream when free shared buffer < 11%, resume with a 5-MTU
  // hysteresis (MTU taken as 4096 B RoCE).
  double pfc_pause_free_fraction = 0.11;
  Bytes pfc_hysteresis = 5 * 4096;

  /// One-way latency of a CNP control message back to the sender.
  SimTime cnp_delay = 5 * kMicrosecond;
  /// Receiver-side minimum CNP spacing (CnpMode::ReceiverTimer).
  SimTime receiver_cnp_interval = 50 * kMicrosecond;
  /// PEEL's sender-side guard timer (CnpMode::SenderGuard).
  SimTime sender_guard_interval = 50 * kMicrosecond;

  DcqcnParams dcqcn;

  /// In-network reduction: delay between the moment a combiner has every
  /// expected child's next bytes of a chunk and the combined segment entering
  /// the upstream egress queue (switch ALU + SRAM read-out; SHArP-class
  /// hardware quotes sub-microsecond combine stages).
  SimTime reduce_combine_latency = 200;  // ns

  /// Disables rate control entirely (links still serialize FIFO). In the
  /// flow-level fidelity it disables the fitted utilization caps, so flows
  /// run at their unscaled max-min rates.
  bool congestion_control = true;

  /// Flow-level fidelity knobs (ignored by the packet-level engines).
  FlowModelConfig flow;

  TelemetryConfig telemetry;

  std::uint64_t seed = 1;

  /// Throws std::invalid_argument on configurations the data plane cannot
  /// execute meaningfully: non-positive segment or buffer sizes, an inverted
  /// ECN band (kmax < kmin; kmax == kmin is a legal step-ECN config),
  /// negative PFC hysteresis, or out-of-range fractions. Called by the
  /// Network constructor, so a bad config fails loudly at setup instead of
  /// misbehaving mid-run.
  void validate() const;
};

}  // namespace peel
