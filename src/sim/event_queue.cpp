#include "src/sim/event_queue.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace peel {

void EventQueue::check_not_past(SimTime t) const {
  if (t < now_) {
    throw std::logic_error("EventQueue: scheduling into the past (t=" +
                           std::to_string(t) + " ns < now=" +
                           std::to_string(now_) + " ns)");
  }
}

void EventQueue::at(SimTime t, Action fn) {
  check_not_past(t);
  heap_.push(Entry{t, next_seq_++, SimEvent{}, std::move(fn)});
}

void EventQueue::at(SimTime t, const SimEvent& ev) {
  check_not_past(t);
  heap_.push(Entry{t, next_seq_++, ev, {}});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the action is moved out via const_cast,
  // which is safe because the entry is popped before the action runs.
  Entry& top = const_cast<Entry&>(heap_.top());
  now_ = top.t;
  if (top.ev.kind != SimEventKind::None) {
    const SimEvent ev = top.ev;
    heap_.pop();
    ++processed_;
    if (sink_ == nullptr) {
      throw std::logic_error("EventQueue: SimEvent fired with no sink bound");
    }
    sink_->on_sim_event(ev);
  } else {
    Action fn = std::move(top.fn);
    heap_.pop();
    ++processed_;
    fn();
  }
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::run_until(SimTime t) {
  while (!heap_.empty() && heap_.top().t <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace peel
