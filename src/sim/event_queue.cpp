#include "src/sim/event_queue.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace peel {

void EventQueue::check_not_past(SimTime t) const {
  if (t < now_) {
    throw std::logic_error("EventQueue: scheduling into the past (t=" +
                           std::to_string(t) + " ns < now=" +
                           std::to_string(now_) + " ns)");
  }
}

void EventQueue::at(SimTime t, Action fn) {
  check_not_past(t);
  acts_.push_back(ClosureEntry{t, next_seq_++, std::move(fn)});
  std::push_heap(acts_.begin(), acts_.end(), ClosureLater{});
}

void EventQueue::insert_slow(const PodEntry& entry) {
  // pod_count_ was already incremented by the caller.
  if (pod_count_ == 1) {
    // First pod after a drain: re-center the ladder just past it so the
    // active window covers the entry and its near future.
    shift_ = kDefaultShift;
    bucket_lo_ = (entry.t >> shift_) + 1;
    bucket_hi_ = bucket_lo_ + kBuckets;
    window_end_ = static_cast<SimTime>(bucket_lo_) << shift_;
    cur_.push_back(entry);  // heap of one
    return;
  }
  const std::int64_t bn = entry.t >> shift_;
  if (bn < bucket_hi_) {
    // Boundary hardening: an entry reaching this branch sits at or past
    // window_end_ (the hot path claims everything below it), so its bucket
    // number can never trail the ladder's low edge. If it did, the ring
    // index (bn & kBucketMask) would alias a future bucket and the entry
    // would fire out of order — fail loudly instead of silently reordering.
    if (bn < bucket_lo_) {
      throw std::logic_error(
          "EventQueue: rung insert below the ladder frontier (t=" +
          std::to_string(entry.t) + " ns, window_end=" +
          std::to_string(window_end_) + " ns)");
    }
    rungs_[static_cast<std::size_t>(bn & kBucketMask)].push_back(entry);
    ++rung_count_;
  } else {
    overflow_.push_back(entry);
  }
}

void EventQueue::advance() {
  for (;;) {
    while (rung_count_ > 0) {
      std::vector<PodEntry>& bucket =
          rungs_[static_cast<std::size_t>(bucket_lo_ & kBucketMask)];
      ++bucket_lo_;
      window_end_ = static_cast<SimTime>(bucket_lo_) << shift_;
      if (!bucket.empty()) {
        rung_count_ -= bucket.size();
        // Swap rather than move: cur_'s spent capacity is recycled as the
        // (now empty) bucket's storage.
        cur_.swap(bucket);
        std::make_heap(cur_.begin(), cur_.end(), PodLater{});
        return;
      }
    }
    rebase();
  }
}

void EventQueue::rebase() {
  SimTime lo = overflow_.front().t;
  SimTime hi = lo;
  for (const PodEntry& e : overflow_) {
    if (e.t < lo) lo = e.t;
    if (e.t > hi) hi = e.t;
  }
  // Widen the stride until the span fits the ring; entries in the ragged
  // last bucket simply stay in overflow for the next rebase.
  shift_ = kDefaultShift;
  while (((hi - lo) >> shift_) >= kBuckets) ++shift_;
  bucket_lo_ = lo >> shift_;
  bucket_hi_ = bucket_lo_ + kBuckets;
  window_end_ = static_cast<SimTime>(bucket_lo_) << shift_;
  std::vector<PodEntry> rest;
  for (const PodEntry& e : overflow_) {
    const std::int64_t bn = e.t >> shift_;
    if (bn < bucket_hi_) {
      rungs_[static_cast<std::size_t>(bn & kBucketMask)].push_back(e);
      ++rung_count_;
    } else {
      rest.push_back(e);
    }
  }
  overflow_ = std::move(rest);
}

bool EventQueue::peek_next(SimTime& t) {
  const bool have_pod = pod_count_ != 0;
  if (have_pod && cur_.empty()) advance();
  if (have_pod && !acts_.empty()) {
    t = std::min(cur_.front().t, acts_.front().t);
  } else if (have_pod) {
    t = cur_.front().t;
  } else if (!acts_.empty()) {
    t = acts_.front().t;
  } else {
    return false;
  }
  return true;
}

bool EventQueue::step() {
  const bool have_pod = pod_count_ != 0;
  if (have_pod && cur_.empty()) advance();
  bool take_pod = have_pod;
  if (have_pod && !acts_.empty()) {
    const PodEntry& p = cur_.front();
    const ClosureEntry& c = acts_.front();
    take_pod = p.t != c.t ? p.t < c.t : p.seq < c.seq;
  } else if (!have_pod && acts_.empty()) {
    return false;
  }
  if (take_pod) {
    std::pop_heap(cur_.begin(), cur_.end(), PodLater{});
    const PodEntry entry = cur_.back();
    cur_.pop_back();
    --pod_count_;
    now_ = entry.t;
    ++processed_;
    if (sink_ == nullptr) {
      throw std::logic_error("EventQueue: SimEvent fired with no sink bound");
    }
    sink_->on_sim_event(entry.ev);
  } else {
    std::pop_heap(acts_.begin(), acts_.end(), ClosureLater{});
    ClosureEntry entry = std::move(acts_.back());
    acts_.pop_back();
    now_ = entry.t;
    ++processed_;
    entry.fn();
  }
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::run_until(SimTime t) {
  SimTime next = 0;
  while (peek_next(next) && next <= t) step();
  if (now_ < t) now_ = t;
}

void EventQueue::run_window(SimTime end) {
  SimTime next = 0;
  while (peek_next(next) && next < end) step();
}

}  // namespace peel
