#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace peel {

Network::Network(const Topology& topo, const SimConfig& config, EventQueue& queue)
    : topo_(&topo),
      config_(config),
      queue_(&queue),
      rng_(config.seed ^ 0x5eedf00dULL),
      links_(topo.link_count()),
      nodes_(topo.node_count()),
      blocked_pumps_(topo.node_count()) {
  config_.validate();
  pause_threshold_ = static_cast<Bytes>(
      static_cast<double>(config_.switch_buffer_bytes) *
      (1.0 - config_.pfc_pause_free_fraction));
  resume_threshold_ =
      std::max<Bytes>(0, pause_threshold_ - config_.pfc_hysteresis);
  in_slot_of_link_.assign(topo.link_count(), -1);
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const auto& ins = topo.in_links(static_cast<NodeId>(n));
    nodes_[n].per_ingress.assign(ins.size(), 0);
    std::int32_t slot = 0;
    for (LinkId l : ins) in_slot_of_link_[static_cast<std::size_t>(l)] = slot++;
  }
  queue_->bind_sink(this);
  if (config_.telemetry.enabled) {
    telem_ = std::make_unique<Telemetry>(config_.telemetry, topo);
    if (config_.telemetry.sample_interval > 0) {
      sampler_armed_ = true;
      queue_->after(config_.telemetry.sample_interval,
                    SimEvent{SimEventKind::SampleTick});
    }
  }
}

Network::~Network() {
  if (queue_->sink() == this) queue_->bind_sink(nullptr);
}

void Network::on_sim_event(const SimEvent& ev) {
  switch (ev.kind) {
    case SimEventKind::Pump:
      if (streams_[static_cast<std::size_t>(ev.a)].injectors.empty()) {
        pump(ev.a);
      } else {
        pump_reduce(ev.a, ev.b);
      }
      return;
    case SimEventKind::FinishTx:
      finish_tx(ev.a, ev.epoch);
      return;
    case SimEventKind::Arrive:
      arrive(ev.a, Segment{ev.b, ev.c, ev.d, ev.e, ev.flag}, ev.epoch);
      return;
    case SimEventKind::CnpRate: {
      auto& st = streams_[static_cast<std::size_t>(ev.a)];
      if (st.closed) return;
      if (st.injectors.empty()) {
        st.cc.on_cnp(queue_->now());
      } else {
        // Reduce stream: the CNP targets one contributor's injector (ev.b).
        auto& inj = st.injectors[static_cast<std::size_t>(ev.b)];
        if (inj.local) inj.cc.on_cnp(queue_->now());
      }
      return;
    }
    case SimEventKind::ReduceEmit:
      reduce_emit(ev.a, ev.b, ev.c, ev.d, ev.flag);
      return;
    case SimEventKind::SampleTick:
      sample_tick();
      return;
    // Cross-domain PFC frames (sharded engine): the pause decision — and its
    // telemetry — happened on the buffer-owning (mirror) side when the frame
    // was posted; here the link's owning domain applies the state change to
    // the real serializer. The epoch guard drops frames that were in flight
    // when the link failed: the failure already cleared pause state on both
    // sides, and a stale pause must never wedge a repaired link.
    case SimEventKind::PfcPause: {
      auto& L = links_[static_cast<std::size_t>(ev.a)];
      if (L.fail_epoch == ev.epoch) L.pfc_paused = true;
      return;
    }
    case SimEventKind::PfcResume: {
      auto& L = links_[static_cast<std::size_t>(ev.a)];
      if (L.fail_epoch == ev.epoch && L.pfc_paused) {
        L.pfc_paused = false;
        if (L.blocked) try_start(ev.a);
      }
      return;
    }
    case SimEventKind::None:
      break;
  }
  throw std::logic_error("Network: unknown SimEvent kind");
}

void Network::post_pfc(SimEventKind kind, LinkId ingress) {
  if (xhook_ == nullptr) return;
  SimEvent ev;
  ev.kind = kind;
  ev.a = ingress;
  ev.epoch = links_[static_cast<std::size_t>(ingress)].fail_epoch;
  // The frame travels back to the link's sender: one propagation delay,
  // which is >= the shard lookahead for every cross-domain link.
  xhook_->post(queue_->now() + topo_->link(ingress).propagation, ev);
}

void Network::sample_tick() {
  telem_->sample(queue_->now());
  // Only stay alive while the simulation itself has work left; the sampler
  // must never be the event that keeps the queue from draining. send_chunk
  // re-arms it when new work shows up after a lapse.
  if (queue_->pending() > 0) {
    queue_->after(config_.telemetry.sample_interval,
                  SimEvent{SimEventKind::SampleTick});
  } else {
    sampler_armed_ = false;
  }
}

void Network::rearm_sampler() {
  if (telem_ && config_.telemetry.sample_interval > 0 && !sampler_armed_) {
    sampler_armed_ = true;
    queue_->after(config_.telemetry.sample_interval,
                  SimEvent{SimEventKind::SampleTick});
  }
}

StreamDiagnostic Network::stream_diagnostic(StreamId s) const {
  const auto& st = streams_[static_cast<std::size_t>(s)];
  StreamDiagnostic d;
  d.stream = s;
  d.tag = st.spec.tag;
  d.closed = st.closed;
  d.pump_blocked = st.pump_blocked;
  d.pump_scheduled = st.pump_scheduled;
  for (std::size_t i = st.pending_head; i < st.pending.size(); ++i) {
    ++d.pending_chunks;
    d.bytes_pending_injection += st.pending[i].bytes - st.pending[i].injected;
  }
  for (const auto& inj : st.injectors) {
    d.pump_blocked |= inj.pump_blocked;
    d.pump_scheduled |= inj.pump_scheduled;
    for (std::size_t i = inj.pending_head; i < inj.pending.size(); ++i) {
      ++d.pending_chunks;
      d.bytes_pending_injection +=
          inj.pending[i].bytes - inj.pending[i].injected;
    }
  }
  for (const auto& prog : st.progress) {
    for (std::size_t c = 0; c < st.chunk_want.size(); ++c) {
      const Bytes want = st.chunk_want[c];
      if (want <= 0) continue;
      const Bytes got = c < prog.size() ? prog[c] : 0;
      if (got < want) ++d.incomplete_deliveries;
    }
  }
  return d;
}

double Network::source_line_rate(const StreamSpec& spec, NodeId start) const {
  // The rate limiter physically sits at the NIC: walk through any leading
  // NVLink hop(s) and pace against the first fabric-facing link.  Pacing
  // against NVLink itself (900 B/ns) would let a GPU-sourced stream dump the
  // whole message into local buffers before congestion control can act.
  auto it = spec.forward.find(start);
  if (it == spec.forward.end() || it->second.empty()) {
    throw std::invalid_argument("stream source has no out-links");
  }
  NodeId cursor = start;
  for (int depth = 0; depth < 4; ++depth) {
    const auto hop = spec.forward.find(cursor);
    if (hop == spec.forward.end() || hop->second.empty()) break;
    double rate = topo_->link(hop->second.front()).rate.bytes_per_ns();
    bool all_nvlink = true;
    for (LinkId l : hop->second) {
      rate = std::min(rate, topo_->link(l).rate.bytes_per_ns());
      all_nvlink &= topo_->link(l).kind == LinkKind::NvLink;
    }
    if (!all_nvlink || hop->second.size() > 1) return rate;
    cursor = topo_->link(hop->second.front()).dst;
  }
  // Pure-NVLink stream (intra-host delivery): no NIC on the path.
  double rate = topo_->link(it->second.front()).rate.bytes_per_ns();
  for (LinkId l : it->second) {
    rate = std::min(rate, topo_->link(l).rate.bytes_per_ns());
  }
  return rate;
}

Bytes Network::max_queue_peak() const {
  Bytes peak = 0;
  for (const LinkState& l : links_) peak = std::max(peak, l.queue_peak);
  return peak;
}

StreamId Network::open_stream(StreamSpec spec) {
  const auto id = static_cast<StreamId>(streams_.size());
  const std::size_t node_count = topo_->node_count();
  StreamState st;
  const bool reduce = !spec.contributors.empty();
  if (!reduce) {
    // Reduce streams pace per contributor instead; spec.source is the pivot
    // switch where the combined bytes turn around into the down multicast —
    // nothing injects there.
    const double line = source_line_rate(spec, spec.source);
    st.cc =
        Dcqcn(config_.dcqcn, line, spec.cnp_mode, config_.sender_guard_interval);
  }

  // Compile the forwarding map into CSR form: count out-degrees, prefix-sum
  // into offsets, then drop each node's out-links (in spec order) into its
  // slice. arrive() then replicates with two array reads and no hashing.
  st.fwd_offset.assign(node_count + 1, 0);
  std::size_t total_out = 0;
  for (const auto& [node, outs] : spec.forward) {
    if (node < 0 || static_cast<std::size_t>(node) >= node_count) {
      throw std::invalid_argument("stream forward map names an unknown node");
    }
    st.fwd_offset[static_cast<std::size_t>(node) + 1] =
        static_cast<std::int32_t>(outs.size());
    total_out += outs.size();
  }
  for (std::size_t n = 0; n < node_count; ++n) {
    st.fwd_offset[n + 1] += st.fwd_offset[n];
  }
  st.fwd_links.resize(total_out);
  for (const auto& [node, outs] : spec.forward) {
    std::copy(outs.begin(), outs.end(),
              st.fwd_links.begin() +
                  st.fwd_offset[static_cast<std::size_t>(node)]);
  }

  // Dense receiver index (deduplicated, first occurrence wins).
  st.recv_index.assign(node_count, -1);
  for (NodeId r : spec.receivers) {
    if (r < 0 || static_cast<std::size_t>(r) >= node_count) {
      throw std::invalid_argument("stream receiver list names an unknown node");
    }
    auto& slot = st.recv_index[static_cast<std::size_t>(r)];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(st.recv_nodes.size());
      st.recv_nodes.push_back(r);
    }
  }
  st.progress.resize(st.recv_nodes.size());
  st.last_cnp.assign(st.recv_nodes.size(), kMinCnp);

  if (reduce) {
    if (!spec.contributor_local.empty() &&
        spec.contributor_local.size() != spec.contributors.size()) {
      throw std::invalid_argument(
          "contributor_local mask must match contributors");
    }
    // The forward map is the down multicast tree; contributions climb the
    // exact mirror of the same links. Invert it once: node -> the one
    // forward link pointing at it.
    std::unordered_map<NodeId, LinkId> in_link;
    in_link.reserve(st.fwd_links.size());
    for (const auto& [node, outs] : spec.forward) {
      for (LinkId l : outs) {
        if (!in_link.try_emplace(topo_->link(l).dst, l).second) {
          throw std::invalid_argument(
              "reduce stream forward map is not a tree");
        }
      }
    }
    // One paced injector per contributing endpoint, each rate-limited
    // against the first fabric link of its own up-path (the mirror of the
    // down-tree branch that serves it).
    st.injectors.reserve(spec.contributors.size());
    for (std::size_t i = 0; i < spec.contributors.size(); ++i) {
      ReduceInjector inj;
      inj.node = spec.contributors[i];
      inj.local =
          spec.contributor_local.empty() || spec.contributor_local[i] != 0;
      const auto in_it = in_link.find(inj.node);
      if (in_it == in_link.end()) {
        throw std::invalid_argument(
            "reduce contributor is not in the down-tree");
      }
      const auto cn = static_cast<std::size_t>(inj.node);
      if (st.fwd_offset[cn] != st.fwd_offset[cn + 1]) {
        throw std::invalid_argument(
            "reduce contributor is an interior node of the down-tree; "
            "in-network combining at an injecting endpoint is not modeled");
      }
      inj.up_link = topo_->reverse_of(in_it->second);
      // The rate limiter physically sits at the NIC: walk through any
      // leading NVLink mirror hop(s) and pace against the first
      // fabric-facing up-link (source_line_rate's reduce twin).
      LinkId pace = inj.up_link;
      for (int depth = 0;
           depth < 4 && topo_->link(pace).kind == LinkKind::NvLink; ++depth) {
        const auto up = in_link.find(topo_->link(pace).dst);
        if (up == in_link.end()) break;  // pure-NVLink path: no NIC to pace at
        pace = topo_->reverse_of(up->second);
      }
      const double line = topo_->link(pace).rate.bytes_per_ns();
      inj.cc = Dcqcn(config_.dcqcn, line, spec.cnp_mode,
                     config_.sender_guard_interval);
      st.injectors.push_back(std::move(inj));
    }
    // Every interior node of the down-tree is an aggregation point whose
    // fan-in set is link-for-link the mirror of its fan-out: it holds a
    // chunk's bytes until every mirrored child link has delivered them, then
    // forwards the combined frontier up its own mirrored in-link — or, at
    // the pivot (spec.source, the only interior node with no in-link),
    // launches it onto the forward fan-out. Node order and child order are
    // canonicalized by sorting, so combiner indices do not depend on the
    // forward map's iteration order.
    std::vector<NodeId> combine_nodes;
    combine_nodes.reserve(spec.forward.size());
    for (const auto& [node, outs] : spec.forward) {
      if (!outs.empty()) combine_nodes.push_back(node);
    }
    std::sort(combine_nodes.begin(), combine_nodes.end());
    st.combiner_of_node.assign(node_count, -1);
    st.combiners.reserve(combine_nodes.size());
    bool pivot_seen = false;
    for (NodeId n : combine_nodes) {
      ReduceCombiner cb;
      cb.node = n;
      cb.child_links.reserve(spec.forward.at(n).size());
      for (LinkId l : spec.forward.at(n)) {
        cb.child_links.push_back(topo_->reverse_of(l));
      }
      std::sort(cb.child_links.begin(), cb.child_links.end());
      if (const auto it = in_link.find(n); it != in_link.end()) {
        cb.up_link = topo_->reverse_of(it->second);
      } else if (n == spec.source) {
        pivot_seen = true;
      } else {
        throw std::invalid_argument(
            "reduce stream down-tree is rooted away from spec.source");
      }
      st.combiner_of_node[static_cast<std::size_t>(n)] =
          static_cast<std::int32_t>(st.combiners.size());
      st.combiners.push_back(std::move(cb));
    }
    if (!pivot_seen) {
      throw std::invalid_argument(
          "reduce stream source is not an interior node of the forward map");
    }
  }

  st.spec = std::move(spec);
  streams_.push_back(std::move(st));
  if (telem_) {
    const StreamSpec& sp = streams_.back().spec;
    telem_->on_stream_open(id, sp.tag, sp.receivers);
    if (reduce) telem_->on_reduce_open(id, sp.contributors);
  }
  return id;
}

StreamId Network::open_stream_stub() {
  const auto id = static_cast<StreamId>(streams_.size());
  streams_.emplace_back();  // no tables; keeps StreamIds aligned across domains
  return id;
}

void Network::note_chunk(StreamId stream, int chunk_index, Bytes bytes) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (st.closed) return;
  if (chunk_index < 0) {
    throw std::invalid_argument("chunk index must be non-negative");
  }
  const auto ci = static_cast<std::size_t>(chunk_index);
  if (st.chunk_want.size() <= ci) st.chunk_want.resize(ci + 1, 0);
  st.chunk_want[ci] = bytes;
  if (telem_ && !st.injectors.empty() && bytes > 0) {
    telem_->on_reduce_target(stream, chunk_index, bytes);
  }
}

void Network::send_chunk(StreamId stream, int chunk_index, Bytes bytes) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (st.closed) throw std::logic_error("send_chunk on closed stream");
  if (bytes <= 0) throw std::invalid_argument("chunk bytes must be positive");
  if (chunk_index < 0) {
    throw std::invalid_argument("chunk index must be non-negative");
  }
  const auto ci = static_cast<std::size_t>(chunk_index);
  if (st.chunk_want.size() <= ci) st.chunk_want.resize(ci + 1, 0);
  st.chunk_want[ci] = bytes;
  if (!st.injectors.empty()) {
    // In-network reduction: every (engine-local) contributor injects its own
    // copy of the chunk; the tree combines them on the way to the root.
    if (telem_) telem_->on_reduce_target(stream, chunk_index, bytes);
    for (std::size_t i = 0; i < st.injectors.size(); ++i) {
      ReduceInjector& inj = st.injectors[i];
      if (!inj.local) continue;
      inj.pending.push_back(PendingChunk{chunk_index, bytes, 0});
      if (!inj.pump_scheduled) {
        inj.pump_scheduled = true;
        queue_->after(0, SimEvent{SimEventKind::Pump, false, stream,
                                  static_cast<std::int32_t>(i)});
      }
    }
  } else {
    st.pending.push_back(PendingChunk{chunk_index, bytes, 0});
    if (!st.pump_scheduled) {
      st.pump_scheduled = true;
      queue_->after(0, SimEvent{SimEventKind::Pump, false, stream});
    }
  }
  // A lapsed telemetry sampler (the event queue momentarily drained at a
  // tick) restarts with the new work instead of staying dead for the rest
  // of the run.
  if (telem_ && config_.telemetry.sample_interval > 0 && !sampler_armed_) {
    sampler_armed_ = true;
    queue_->after(config_.telemetry.sample_interval,
                  SimEvent{SimEventKind::SampleTick});
  }
}

std::vector<int> Network::cancel_unsent_chunks(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  std::vector<int> cancelled;
  // Keep the chunk currently mid-injection (if any); drop the rest.
  std::size_t keep = st.pending_head;
  if (keep < st.pending.size() && st.pending[keep].injected > 0) ++keep;
  for (std::size_t i = keep; i < st.pending.size(); ++i) {
    cancelled.push_back(st.pending[i].chunk);
    st.chunk_want[static_cast<std::size_t>(st.pending[i].chunk)] = 0;
  }
  st.pending.resize(keep);
  return cancelled;
}

void Network::close_stream(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (telem_ && !st.closed) {
    // Computed before the spec/progress are cleared below.
    telem_->on_stream_close(stream,
                            stream_diagnostic(stream).incomplete_deliveries == 0);
  }
  st.closed = true;
  // Release, don't just clear: fault-heavy runs open one recovery stream per
  // (collective, origin) per pass, and clear() retains each dead stream's
  // node-count-sized tables (fwd_offset, recv_index) forever — hundreds of
  // MiB of dead capacity across a flapping horizon.
  // NB: `v = {}` is initializer-list assignment and keeps capacity, exactly
  // like clear(); swapping with a default-constructed temporary frees it.
  auto release = [](auto& c) { std::decay_t<decltype(c)>{}.swap(c); };
  release(st.spec.forward);
  release(st.spec.receivers);
  release(st.fwd_offset);
  release(st.fwd_links);
  release(st.recv_index);
  release(st.recv_nodes);
  release(st.progress);
  release(st.last_cnp);
  release(st.chunk_want);
  release(st.pending);
  release(st.spec.contributors);
  release(st.spec.contributor_local);
  release(st.injectors);
  release(st.combiners);
  release(st.combiner_of_node);
  // Whatever this stream still held in combiner SRAM is discarded with it.
  reduce_held_ -= st.reduce_held;
  st.reduce_held = 0;
  st.pending_head = 0;
}

void Network::on_duplex_failed(LinkId l) {
  for (LinkId dir : {l, topo_->reverse_of(l)}) {
    auto& L = links_[static_cast<std::size_t>(dir)];
    // Kill in-flight traffic even across a later repair: segments carry the
    // epoch their serialization started under, and arrive() drops stale ones.
    ++L.fail_epoch;
    // The segment mid-serialization (if any) is lost on the wire; its
    // arrival event will see the stale epoch and drop it. Everything still
    // queued behind it is lost here.
    std::size_t first_dropped = L.head + (L.busy ? 1 : 0);
    for (std::size_t i = first_dropped; i < L.q.size(); ++i) {
      const Segment& seg = L.q[i];
      L.queued -= seg.bytes;
      release_buffer(topo_->link(dir).src, seg.ingress, seg.bytes);
      ++lost_segments_;
      if (telem_) {
        telem_->on_queue_drop(dir, seg.stream, seg.bytes, L.queued,
                              queue_->now());
      }
    }
    L.q.resize(first_dropped);
    if (!L.busy) {
      L.q.clear();
      L.head = 0;
    }
    L.blocked = false;
    L.pfc_paused = false;
  }
}

void Network::on_duplex_restored(LinkId l) {
  ++duplex_repairs_;
  for (LinkId dir : {l, topo_->reverse_of(l)}) {
    auto& L = links_[static_cast<std::size_t>(dir)];
    // on_duplex_failed left the queue truncated and PFC state cleared; a
    // still-busy head belongs to the outage and finish_tx will retire it.
    // New segments start flowing the moment something enqueues.
    if (!L.busy) try_start(dir);
  }
}

void Network::pump(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  st.pump_scheduled = false;
  if (st.closed) return;

  while (st.pending_head < st.pending.size()) {
    const SimTime now = queue_->now();
    // Backpressure: a paused source (its own egress buffers full, e.g. under
    // PFC from downstream) stops injecting; release_buffer re-arms the pump.
    if (nodes_[static_cast<std::size_t>(st.spec.source)].buffered >
        pause_threshold_) {
      st.pump_blocked = true;
      blocked_pumps_[static_cast<std::size_t>(st.spec.source)].push_back(
          BlockedPump{stream, -1});
      return;
    }
    if (st.pace_next > now) {
      st.pump_scheduled = true;
      queue_->at(st.pace_next, SimEvent{SimEventKind::Pump, false, stream});
      return;
    }
    const double rate = config_.congestion_control
                            ? st.cc.rate(now)
                            : st.cc.line_rate();
    auto& pc = st.pending[st.pending_head];
    const Bytes seg_bytes =
        std::min<Bytes>(config_.segment_bytes, pc.bytes - pc.injected);
    const Segment seg{stream, pc.chunk, static_cast<std::int32_t>(seg_bytes),
                      kInvalidLink, false};
    if (telem_) telem_->on_inject(stream, pc.chunk, seg_bytes);
    const auto src = static_cast<std::size_t>(st.spec.source);
    const std::int32_t out_begin = st.fwd_offset[src];
    const std::int32_t out_end = st.fwd_offset[src + 1];
    for (std::int32_t i = out_begin; i < out_end; ++i) {
      enqueue_segment(st.fwd_links[static_cast<std::size_t>(i)], seg);
    }
    pc.injected += seg_bytes;
    if (pc.injected == pc.bytes) {
      ++st.pending_head;
      if (st.pending_head == st.pending.size()) {
        st.pending.clear();
        st.pending_head = 0;
      }
    }
    const double tx_ns = static_cast<double>(seg_bytes) / rate;
    st.pace_next =
        std::max(st.pace_next, now) + static_cast<SimTime>(std::ceil(tx_ns));
  }
}

void Network::pump_reduce(StreamId stream, std::int32_t injector) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  ReduceInjector& inj = st.injectors[static_cast<std::size_t>(injector)];
  inj.pump_scheduled = false;
  if (st.closed) return;

  while (inj.pending_head < inj.pending.size()) {
    const SimTime now = queue_->now();
    if (nodes_[static_cast<std::size_t>(inj.node)].buffered >
        pause_threshold_) {
      inj.pump_blocked = true;
      blocked_pumps_[static_cast<std::size_t>(inj.node)].push_back(
          BlockedPump{stream, injector});
      return;
    }
    if (inj.pace_next > now) {
      inj.pump_scheduled = true;
      queue_->at(inj.pace_next,
                 SimEvent{SimEventKind::Pump, false, stream, injector});
      return;
    }
    const double rate = config_.congestion_control ? inj.cc.rate(now)
                                                   : inj.cc.line_rate();
    auto& pc = inj.pending[inj.pending_head];
    const Bytes seg_bytes =
        std::min<Bytes>(config_.segment_bytes, pc.bytes - pc.injected);
    const Segment seg{stream, pc.chunk, static_cast<std::int32_t>(seg_bytes),
                      kInvalidLink, false};
    if (telem_) {
      telem_->on_inject(stream, pc.chunk, seg_bytes);
      telem_->on_reduce_contribute(stream, inj.node, pc.chunk, seg_bytes);
    }
    enqueue_segment(inj.up_link, seg);
    pc.injected += seg_bytes;
    if (pc.injected == pc.bytes) {
      ++inj.pending_head;
      if (inj.pending_head == inj.pending.size()) {
        inj.pending.clear();
        inj.pending_head = 0;
      }
    }
    const double tx_ns = static_cast<double>(seg_bytes) / rate;
    inj.pace_next =
        std::max(inj.pace_next, now) + static_cast<SimTime>(std::ceil(tx_ns));
  }
}

void Network::enqueue_segment(LinkId l, Segment seg) {
  if (topo_->link(l).failed) {
    ++lost_segments_;  // forwarding entry points at a dead port
    if (telem_) telem_->on_ingress_drop(seg.stream, seg.bytes);
    return;
  }
  auto& L = links_[static_cast<std::size_t>(l)];
  auto& N = nodes_[static_cast<std::size_t>(topo_->link(l).src)];

  // RED/ECN marking against the pre-enqueue egress depth. The kmax > kmin
  // guard keeps the step-ECN configuration (kmax == kmin: mark with pmax
  // certainty at the threshold) out of the divide.
  if (!seg.marked && config_.congestion_control) {
    if (L.queued >= config_.ecn_kmax) {
      seg.marked = true;
    } else if (L.queued > config_.ecn_kmin &&
               config_.ecn_kmax > config_.ecn_kmin) {
      const double p = config_.ecn_pmax *
                       static_cast<double>(L.queued - config_.ecn_kmin) /
                       static_cast<double>(config_.ecn_kmax - config_.ecn_kmin);
      if (rng_.next_double() < p) seg.marked = true;
    }
    if (seg.marked) {
      ++marked_segments_;
      if (telem_) telem_->on_ecn_mark(l);
    }
  }

  L.q.push_back(seg);
  L.queued += seg.bytes;
  L.queue_peak = std::max(L.queue_peak, L.queued);
  N.buffered += seg.bytes;
  if (telem_) {
    telem_->on_enqueue(l, seg.stream, seg.bytes, L.queued, queue_->now());
    telem_->on_node_buffer(topo_->link(l).src, N.buffered);
  }
  if (seg.ingress != kInvalidLink) {
    N.per_ingress[static_cast<std::size_t>(
        in_slot_of_link_[static_cast<std::size_t>(seg.ingress)])] += seg.bytes;
    // PFC: when the shared buffer crosses the stop threshold, pause the
    // ingress port that keeps contributing.
    auto& ingress_link = links_[static_cast<std::size_t>(seg.ingress)];
    if (N.buffered > pause_threshold_ && !ingress_link.pfc_paused) {
      ingress_link.pfc_paused = true;
      ++pfc_pauses_;
      if (telem_) telem_->on_pause(seg.ingress, queue_->now());
      // Sharded engine: if another domain owns the ingress link's
      // serializer, this flip only touched the local mirror — forward the
      // pause frame to the owner.
      post_pfc(SimEventKind::PfcPause, seg.ingress);
    }
  }
  if (!L.busy) try_start(l);
}

void Network::try_start(LinkId l) {
  auto& L = links_[static_cast<std::size_t>(l)];
  if (L.busy || L.head >= L.q.size()) return;
  const Link& lk = topo_->link(l);
  if (L.pfc_paused) {
    L.blocked = true;  // PFC: downstream asked us to hold off
    return;
  }
  L.blocked = false;
  L.busy = true;
  const Segment& seg = L.q[L.head];
  const SimTime end = queue_->now() + lk.rate.tx_time(seg.bytes);
  // Snapshot the fail epoch at serialization start: a failure at any point
  // before arrival (mid-serialization or mid-propagation) must lose the
  // segment, repair or no repair.
  queue_->at(end, SimEvent{SimEventKind::FinishTx, false, l, 0, 0, 0, 0,
                           L.fail_epoch});
}

void Network::finish_tx(LinkId l, std::uint32_t fail_epoch) {
  auto& L = links_[static_cast<std::size_t>(l)];
  const Link& lk = topo_->link(l);
  const Segment seg = L.q[L.head];
  ++L.head;
  if (L.head == L.q.size() || L.head > 1024) {
    L.q.erase(L.q.begin(), L.q.begin() + static_cast<std::ptrdiff_t>(L.head));
    L.head = 0;
  }
  L.queued -= seg.bytes;
  L.serialized += seg.bytes;
  total_bytes_ += seg.bytes;
  ++segments_serialized_;
  L.busy = false;
  if (telem_) {
    telem_->on_serialized(l, seg.stream, seg.bytes, L.queued, queue_->now());
  }

  release_buffer(lk.src, seg.ingress, seg.bytes);

  post_event(queue_->now() + lk.propagation,
             SimEvent{SimEventKind::Arrive, seg.marked, l, seg.stream,
                      seg.chunk, seg.bytes, seg.ingress, fail_epoch});
  try_start(l);
}

void Network::unpause(LinkId l) {
  auto& L = links_[static_cast<std::size_t>(l)];
  if (!L.pfc_paused) return;
  L.pfc_paused = false;
  if (telem_) telem_->on_unpause(l, queue_->now());
  if (L.blocked) try_start(l);
  post_pfc(SimEventKind::PfcResume, l);
}

void Network::release_buffer(NodeId n, LinkId ingress, Bytes bytes) {
  auto& N = nodes_[static_cast<std::size_t>(n)];
  N.buffered -= bytes;
  if (ingress != kInvalidLink) {
    Bytes& held =
        N.per_ingress[static_cast<std::size_t>(
            in_slot_of_link_[static_cast<std::size_t>(ingress)])];
    if (held <= 0) {
      throw std::logic_error("release_buffer: untracked ingress");
    }
    held -= bytes;
    if (held <= 0) {
      // This ingress no longer holds buffer here; resuming it regardless of
      // the total keeps independent directions from deadlocking each other.
      held = 0;
      unpause(ingress);
    }
  }
  if (N.buffered > resume_threshold_) return;
  for (LinkId in : topo_->in_links(n)) unpause(in);
  // Re-arm source pumps blocked on this node's buffer.
  auto& waiting_here = blocked_pumps_[static_cast<std::size_t>(n)];
  if (!waiting_here.empty()) {
    std::vector<BlockedPump> waiting = std::move(waiting_here);
    waiting_here.clear();
    for (const BlockedPump& bp : waiting) {
      auto& st = streams_[static_cast<std::size_t>(bp.stream)];
      if (bp.injector < 0) {
        st.pump_blocked = false;
        if (!st.pump_scheduled && !st.closed) {
          st.pump_scheduled = true;
          queue_->after(0, SimEvent{SimEventKind::Pump, false, bp.stream});
        }
      } else if (!st.closed) {
        ReduceInjector& inj =
            st.injectors[static_cast<std::size_t>(bp.injector)];
        inj.pump_blocked = false;
        if (!inj.pump_scheduled) {
          inj.pump_scheduled = true;
          queue_->after(
              0, SimEvent{SimEventKind::Pump, false, bp.stream, bp.injector});
        }
      }
    }
  }
}

void Network::arrive(LinkId l, Segment seg, std::uint32_t fail_epoch) {
  if (topo_->link(l).failed ||
      links_[static_cast<std::size_t>(l)].fail_epoch != fail_epoch) {
    // Either the link is down right now, or it died (and was possibly
    // repaired) after this segment started serializing — lost on the wire.
    ++lost_segments_;
    if (telem_) telem_->on_wire_drop(seg.stream, seg.bytes);
    return;
  }
  const NodeId n = topo_->link(l).dst;
  auto& st = streams_[static_cast<std::size_t>(seg.stream)];
  if (st.closed) return;

  // In-network reduction: an arrival at an interior node over one of its
  // mirrored child links is an upstream contribution — absorb into combiner
  // SRAM instead of replicating; reduce_absorb forwards the combined
  // frontier once all expected children have delivered it. An arrival at
  // the same node over its down in-link (never a child: the mirror has no
  // 2-cycles) is the multicast passing through and falls through to the
  // ordinary replicate path.
  if (!st.combiner_of_node.empty()) {
    const std::int32_t ci = st.combiner_of_node[static_cast<std::size_t>(n)];
    if (ci >= 0) {
      const auto& kids = st.combiners[static_cast<std::size_t>(ci)].child_links;
      const auto slot = static_cast<std::size_t>(
          std::lower_bound(kids.begin(), kids.end(), l) - kids.begin());
      if (slot < kids.size() && kids[slot] == l) {
        reduce_absorb(seg.stream, ci, slot, seg);
        return;
      }
    }
  }

  seg.ingress = l;  // buffer occupancy downstream is charged to this port
  const auto ni = static_cast<std::size_t>(n);
  const std::int32_t out_begin = st.fwd_offset[ni];
  const std::int32_t out_end = st.fwd_offset[ni + 1];
  for (std::int32_t i = out_begin; i < out_end; ++i) {
    enqueue_segment(st.fwd_links[static_cast<std::size_t>(i)], seg);
  }

  const std::int32_t ri = st.recv_index[ni];
  if (ri >= 0) {
    auto& prog = st.progress[static_cast<std::size_t>(ri)];
    const auto ci = static_cast<std::size_t>(seg.chunk);
    if (prog.size() <= ci) prog.resize(ci + 1, 0);
    Bytes& got = prog[ci];
    got += seg.bytes;
    if (telem_) telem_->on_deliver(seg.stream, n, seg.chunk, seg.bytes);
    if (seg.marked && config_.congestion_control) maybe_cnp(seg.stream, ri, n);
    const Bytes want = ci < st.chunk_want.size() ? st.chunk_want[ci] : 0;
    if (want > 0 && got >= want) {
      if (on_delivery_) {
        on_delivery_(DeliveryEvent{seg.stream, st.spec.tag, n, seg.chunk});
      }
    }
  }
}

void Network::reduce_absorb(StreamId s, std::int32_t combiner,
                            std::size_t slot, const Segment& seg) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  ReduceCombiner& cb = st.combiners[static_cast<std::size_t>(combiner)];
  const auto chunk = static_cast<std::size_t>(seg.chunk);
  if (cb.child_bytes.size() <= chunk) {
    cb.child_bytes.resize(chunk + 1);
    cb.out_progress.resize(chunk + 1, 0);
  }
  auto& row = cb.child_bytes[chunk];
  if (row.empty()) row.assign(cb.child_links.size(), 0);
  row[slot] += seg.bytes;
  st.reduce_held += seg.bytes;
  reduce_held_ += seg.bytes;
  reduce_held_peak_ = std::max(reduce_held_peak_, reduce_held_);
  if (telem_) {
    telem_->on_reduce_absorb(s, cb.child_links[slot], seg.chunk, seg.bytes);
  }

  // A chunk's bytes leave the combiner at the pace of its slowest child;
  // anything a faster sibling is ahead by stays in SRAM.
  Bytes frontier = row[0];
  for (std::size_t i = 1; i < row.size(); ++i) {
    frontier = std::min(frontier, row[i]);
  }
  const Bytes delta = frontier - cb.out_progress[chunk];
  if (delta <= 0) return;
  cb.out_progress[chunk] = frontier;
  const Bytes freed = delta * static_cast<Bytes>(row.size());
  st.reduce_held -= freed;
  reduce_held_ -= freed;
  if (telem_) telem_->on_reduce_emit(s, cb.node, seg.chunk, delta);

  // The combined bytes re-enter the fabric one ALU latency later (ReduceEmit
  // fires on this domain's own queue — the combiner and the serializer it
  // emits on always share a domain).
  queue_->after(config_.reduce_combine_latency,
                SimEvent{SimEventKind::ReduceEmit, seg.marked, s, combiner,
                         seg.chunk, static_cast<std::int32_t>(delta)});
}

void Network::reduce_emit(StreamId s, std::int32_t combiner,
                          std::int32_t chunk, Bytes bytes, bool marked) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  if (st.closed) return;
  const ReduceCombiner& cb =
      st.combiners[static_cast<std::size_t>(combiner)];
  // ingress = kInvalidLink: combined segments come out of combiner SRAM
  // (tracked by the reduce_held gauge), not an ingress queue, so they are
  // deliberately outside per-ingress PFC accounting — pausing the fast
  // children of a slow combiner is exactly the fan-in deadlock the SRAM
  // model exists to avoid.
  const Segment seg{s, chunk, static_cast<std::int32_t>(bytes), kInvalidLink,
                    marked};
  if (cb.up_link != kInvalidLink) {
    enqueue_segment(cb.up_link, seg);
    return;
  }
  // Pivot: the fully combined bytes turn around and launch the forward
  // multicast down to every member.
  const auto ni = static_cast<std::size_t>(cb.node);
  const std::int32_t out_begin = st.fwd_offset[ni];
  const std::int32_t out_end = st.fwd_offset[ni + 1];
  for (std::int32_t i = out_begin; i < out_end; ++i) {
    enqueue_segment(st.fwd_links[static_cast<std::size_t>(i)], seg);
  }
}

void Network::maybe_cnp(StreamId s, std::int32_t recv_idx, NodeId receiver) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  const SimTime now = queue_->now();
  if (st.spec.cnp_mode == CnpMode::ReceiverTimer) {
    SimTime& last = st.last_cnp[static_cast<std::size_t>(recv_idx)];
    // kMinCnp is far enough in the past that a fresh receiver always passes.
    if (now - last < config_.receiver_cnp_interval) return;
    last = now;
  }
  if (telem_) telem_->on_cnp(s, receiver, now);
  if (!st.injectors.empty()) {
    // Reduce stream: one ECN mark at the root fans out into a CNP per
    // contributor — the many-to-one twin of the multicast CNP implosion the
    // guard timer (CnpMode::SenderGuard) coalesces at each injector.
    for (std::size_t i = 0; i < st.injectors.size(); ++i) {
      post_event(now + config_.cnp_delay,
                 SimEvent{SimEventKind::CnpRate, false, s,
                          static_cast<std::int32_t>(i)});
    }
    return;
  }
  post_event(now + config_.cnp_delay, SimEvent{SimEventKind::CnpRate, false, s});
}

}  // namespace peel
