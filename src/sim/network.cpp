#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace peel {

Network::Network(const Topology& topo, const SimConfig& config, EventQueue& queue)
    : topo_(&topo),
      config_(config),
      queue_(&queue),
      rng_(config.seed ^ 0x5eedf00dULL),
      links_(topo.link_count()),
      nodes_(topo.node_count()) {
  pause_threshold_ = static_cast<Bytes>(
      static_cast<double>(config_.switch_buffer_bytes) *
      (1.0 - config_.pfc_pause_free_fraction));
  if (config_.telemetry.enabled) {
    telem_ = std::make_unique<Telemetry>(config_.telemetry, topo);
    if (config_.telemetry.sample_interval > 0) {
      queue_->after(config_.telemetry.sample_interval,
                    [this] { sample_tick(); });
    }
  }
}

void Network::sample_tick() {
  telem_->sample(queue_->now());
  // Only stay alive while the simulation itself has work left; the sampler
  // must never be the event that keeps the queue from draining.
  if (queue_->pending() > 0) {
    queue_->after(config_.telemetry.sample_interval, [this] { sample_tick(); });
  }
}

StreamDiagnostic Network::stream_diagnostic(StreamId s) const {
  const auto& st = streams_[static_cast<std::size_t>(s)];
  StreamDiagnostic d;
  d.stream = s;
  d.tag = st.spec.tag;
  d.closed = st.closed;
  d.pump_blocked = st.pump_blocked;
  d.pump_scheduled = st.pump_scheduled;
  for (std::size_t i = st.pending_head; i < st.pending.size(); ++i) {
    ++d.pending_chunks;
    d.bytes_pending_injection += st.pending[i].bytes - st.pending[i].injected;
  }
  for (NodeId r : st.receiver_set) {
    const auto prog = st.progress.find(r);
    for (const auto& [chunk, want] : st.chunk_bytes) {
      Bytes got = 0;
      if (prog != st.progress.end()) {
        const auto c = prog->second.find(chunk);
        if (c != prog->second.end()) got = c->second;
      }
      if (got < want) ++d.incomplete_deliveries;
    }
  }
  return d;
}

double Network::source_line_rate(const StreamSpec& spec) const {
  // The rate limiter physically sits at the NIC: walk through any leading
  // NVLink hop(s) and pace against the first fabric-facing link.  Pacing
  // against NVLink itself (900 B/ns) would let a GPU-sourced stream dump the
  // whole message into local buffers before congestion control can act.
  auto it = spec.forward.find(spec.source);
  if (it == spec.forward.end() || it->second.empty()) {
    throw std::invalid_argument("stream source has no out-links");
  }
  NodeId cursor = spec.source;
  for (int depth = 0; depth < 4; ++depth) {
    const auto hop = spec.forward.find(cursor);
    if (hop == spec.forward.end() || hop->second.empty()) break;
    double rate = topo_->link(hop->second.front()).rate.bytes_per_ns();
    bool all_nvlink = true;
    for (LinkId l : hop->second) {
      rate = std::min(rate, topo_->link(l).rate.bytes_per_ns());
      all_nvlink &= topo_->link(l).kind == LinkKind::NvLink;
    }
    if (!all_nvlink || hop->second.size() > 1) return rate;
    cursor = topo_->link(hop->second.front()).dst;
  }
  // Pure-NVLink stream (intra-host delivery): no NIC on the path.
  double rate = topo_->link(it->second.front()).rate.bytes_per_ns();
  for (LinkId l : it->second) {
    rate = std::min(rate, topo_->link(l).rate.bytes_per_ns());
  }
  return rate;
}

Bytes Network::max_queue_peak() const {
  Bytes peak = 0;
  for (const LinkState& l : links_) peak = std::max(peak, l.queue_peak);
  return peak;
}

StreamId Network::open_stream(StreamSpec spec) {
  const auto id = static_cast<StreamId>(streams_.size());
  StreamState st;
  st.receiver_set.insert(spec.receivers.begin(), spec.receivers.end());
  const double line = source_line_rate(spec);
  st.cc = Dcqcn(config_.dcqcn, line, spec.cnp_mode, config_.sender_guard_interval);
  st.spec = std::move(spec);
  streams_.push_back(std::move(st));
  if (telem_) {
    const StreamSpec& sp = streams_.back().spec;
    telem_->on_stream_open(id, sp.tag, sp.receivers);
  }
  return id;
}

void Network::send_chunk(StreamId stream, int chunk_index, Bytes bytes) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (st.closed) throw std::logic_error("send_chunk on closed stream");
  if (bytes <= 0) throw std::invalid_argument("chunk bytes must be positive");
  st.chunk_bytes[chunk_index] = bytes;
  st.pending.push_back(PendingChunk{chunk_index, bytes, 0});
  if (!st.pump_scheduled) {
    st.pump_scheduled = true;
    queue_->after(0, [this, stream] { pump(stream); });
  }
}

std::vector<int> Network::cancel_unsent_chunks(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  std::vector<int> cancelled;
  // Keep the chunk currently mid-injection (if any); drop the rest.
  std::size_t keep = st.pending_head;
  if (keep < st.pending.size() && st.pending[keep].injected > 0) ++keep;
  for (std::size_t i = keep; i < st.pending.size(); ++i) {
    cancelled.push_back(st.pending[i].chunk);
    st.chunk_bytes.erase(st.pending[i].chunk);
  }
  st.pending.resize(keep);
  return cancelled;
}

void Network::close_stream(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (telem_ && !st.closed) {
    // Computed before the spec/progress are cleared below.
    telem_->on_stream_close(stream,
                            stream_diagnostic(stream).incomplete_deliveries == 0);
  }
  st.closed = true;
  st.spec.forward.clear();
  st.spec.receivers.clear();
  st.receiver_set.clear();
  st.progress.clear();
  st.last_cnp.clear();
  st.chunk_bytes.clear();
  st.pending.clear();
  st.pending_head = 0;
}

void Network::on_duplex_failed(LinkId l) {
  for (LinkId dir : {l, topo_->reverse_of(l)}) {
    auto& L = links_[static_cast<std::size_t>(dir)];
    // Kill in-flight traffic even across a later repair: segments carry the
    // epoch their serialization started under, and arrive() drops stale ones.
    ++L.fail_epoch;
    // The segment mid-serialization (if any) is lost on the wire; its
    // arrival event will see the stale epoch and drop it. Everything still
    // queued behind it is lost here.
    std::size_t first_dropped = L.head + (L.busy ? 1 : 0);
    for (std::size_t i = first_dropped; i < L.q.size(); ++i) {
      const Segment& seg = L.q[i];
      L.queued -= seg.bytes;
      release_buffer(topo_->link(dir).src, seg.ingress, seg.bytes);
      ++lost_segments_;
      if (telem_) {
        telem_->on_queue_drop(dir, seg.stream, seg.bytes, L.queued,
                              queue_->now());
      }
    }
    L.q.resize(first_dropped);
    if (!L.busy) {
      L.q.clear();
      L.head = 0;
    }
    L.blocked = false;
    L.pfc_paused = false;
  }
}

void Network::on_duplex_restored(LinkId l) {
  ++duplex_repairs_;
  for (LinkId dir : {l, topo_->reverse_of(l)}) {
    auto& L = links_[static_cast<std::size_t>(dir)];
    // on_duplex_failed left the queue truncated and PFC state cleared; a
    // still-busy head belongs to the outage and finish_tx will retire it.
    // New segments start flowing the moment something enqueues.
    if (!L.busy) try_start(dir);
  }
}

void Network::pump(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  st.pump_scheduled = false;
  if (st.closed) return;

  while (st.pending_head < st.pending.size()) {
    const SimTime now = queue_->now();
    // Backpressure: a paused source (its own egress buffers full, e.g. under
    // PFC from downstream) stops injecting; maybe_resume() re-arms the pump.
    if (nodes_[static_cast<std::size_t>(st.spec.source)].buffered >
        pause_threshold_) {
      st.pump_blocked = true;
      blocked_pumps_[st.spec.source].push_back(stream);
      return;
    }
    if (st.pace_next > now) {
      st.pump_scheduled = true;
      queue_->at(st.pace_next, [this, stream] { pump(stream); });
      return;
    }
    const double rate = config_.congestion_control
                            ? st.cc.rate(now)
                            : st.cc.line_rate();
    auto& pc = st.pending[st.pending_head];
    const Bytes seg_bytes =
        std::min<Bytes>(config_.segment_bytes, pc.bytes - pc.injected);
    const Segment seg{stream, pc.chunk, static_cast<std::int32_t>(seg_bytes),
                      kInvalidLink, false};
    if (telem_) telem_->on_inject(stream, pc.chunk, seg_bytes);
    const auto& outs = st.spec.forward.at(st.spec.source);
    for (LinkId l : outs) enqueue_segment(l, seg);
    pc.injected += seg_bytes;
    if (pc.injected == pc.bytes) {
      ++st.pending_head;
      if (st.pending_head == st.pending.size()) {
        st.pending.clear();
        st.pending_head = 0;
      }
    }
    const double tx_ns = static_cast<double>(seg_bytes) / rate;
    st.pace_next =
        std::max(st.pace_next, now) + static_cast<SimTime>(std::ceil(tx_ns));
  }
}

void Network::enqueue_segment(LinkId l, Segment seg) {
  if (topo_->link(l).failed) {
    ++lost_segments_;  // forwarding entry points at a dead port
    if (telem_) telem_->on_ingress_drop(seg.stream, seg.bytes);
    return;
  }
  auto& L = links_[static_cast<std::size_t>(l)];
  auto& N = nodes_[static_cast<std::size_t>(topo_->link(l).src)];

  // RED/ECN marking against the pre-enqueue egress depth.
  if (!seg.marked && config_.congestion_control) {
    if (L.queued >= config_.ecn_kmax) {
      seg.marked = true;
    } else if (L.queued > config_.ecn_kmin) {
      const double p = config_.ecn_pmax *
                       static_cast<double>(L.queued - config_.ecn_kmin) /
                       static_cast<double>(config_.ecn_kmax - config_.ecn_kmin);
      if (rng_.next_double() < p) seg.marked = true;
    }
    if (seg.marked) {
      ++marked_segments_;
      if (telem_) telem_->on_ecn_mark(l);
    }
  }

  L.q.push_back(seg);
  L.queued += seg.bytes;
  L.queue_peak = std::max(L.queue_peak, L.queued);
  N.buffered += seg.bytes;
  if (telem_) {
    telem_->on_enqueue(l, seg.stream, seg.bytes, L.queued, queue_->now());
    telem_->on_node_buffer(topo_->link(l).src, N.buffered);
  }
  if (seg.ingress != kInvalidLink) {
    N.per_ingress[seg.ingress] += seg.bytes;
    // PFC: when the shared buffer crosses the stop threshold, pause the
    // ingress port that keeps contributing.
    auto& ingress_link = links_[static_cast<std::size_t>(seg.ingress)];
    if (N.buffered > pause_threshold_ && !ingress_link.pfc_paused) {
      ingress_link.pfc_paused = true;
      ++pfc_pauses_;
      if (telem_) telem_->on_pause(seg.ingress, queue_->now());
    }
  }
  if (!L.busy) try_start(l);
}

void Network::try_start(LinkId l) {
  auto& L = links_[static_cast<std::size_t>(l)];
  if (L.busy || L.head >= L.q.size()) return;
  const Link& lk = topo_->link(l);
  if (L.pfc_paused) {
    L.blocked = true;  // PFC: downstream asked us to hold off
    return;
  }
  L.blocked = false;
  L.busy = true;
  const Segment& seg = L.q[L.head];
  const SimTime end = queue_->now() + lk.rate.tx_time(seg.bytes);
  // Snapshot the fail epoch at serialization start: a failure at any point
  // before arrival (mid-serialization or mid-propagation) must lose the
  // segment, repair or no repair.
  const std::uint32_t epoch = L.fail_epoch;
  queue_->at(end, [this, l, epoch] { finish_tx(l, epoch); });
}

void Network::finish_tx(LinkId l, std::uint32_t fail_epoch) {
  auto& L = links_[static_cast<std::size_t>(l)];
  const Link& lk = topo_->link(l);
  const Segment seg = L.q[L.head];
  ++L.head;
  if (L.head == L.q.size() || L.head > 1024) {
    L.q.erase(L.q.begin(), L.q.begin() + static_cast<std::ptrdiff_t>(L.head));
    L.head = 0;
  }
  L.queued -= seg.bytes;
  L.serialized += seg.bytes;
  total_bytes_ += seg.bytes;
  L.busy = false;
  if (telem_) {
    telem_->on_serialized(l, seg.stream, seg.bytes, L.queued, queue_->now());
  }

  release_buffer(lk.src, seg.ingress, seg.bytes);

  queue_->at(queue_->now() + lk.propagation,
             [this, l, seg, fail_epoch] { arrive(l, seg, fail_epoch); });
  try_start(l);
}

void Network::unpause(LinkId l) {
  auto& L = links_[static_cast<std::size_t>(l)];
  if (!L.pfc_paused) return;
  L.pfc_paused = false;
  if (telem_) telem_->on_unpause(l, queue_->now());
  if (L.blocked) try_start(l);
}

void Network::release_buffer(NodeId n, LinkId ingress, Bytes bytes) {
  auto& N = nodes_[static_cast<std::size_t>(n)];
  N.buffered -= bytes;
  if (ingress != kInvalidLink) {
    const auto it = N.per_ingress.find(ingress);
    if (it == N.per_ingress.end()) {
      throw std::logic_error("release_buffer: untracked ingress");
    }
    it->second -= bytes;
    if (it->second <= 0) {
      // This ingress no longer holds buffer here; resuming it regardless of
      // the total keeps independent directions from deadlocking each other.
      N.per_ingress.erase(it);
      unpause(ingress);
    }
  }
  const bool below_resume =
      N.buffered <= pause_threshold_ - config_.pfc_hysteresis;
  if (!below_resume) return;
  for (LinkId in : topo_->in_links(n)) unpause(in);
  // Re-arm source pumps blocked on this node's buffer.
  if (auto it = blocked_pumps_.find(n); it != blocked_pumps_.end()) {
    std::vector<StreamId> waiting = std::move(it->second);
    blocked_pumps_.erase(it);
    for (StreamId s : waiting) {
      auto& st = streams_[static_cast<std::size_t>(s)];
      st.pump_blocked = false;
      if (!st.pump_scheduled && !st.closed) {
        st.pump_scheduled = true;
        queue_->after(0, [this, s] { pump(s); });
      }
    }
  }
}

void Network::arrive(LinkId l, Segment seg, std::uint32_t fail_epoch) {
  if (topo_->link(l).failed ||
      links_[static_cast<std::size_t>(l)].fail_epoch != fail_epoch) {
    // Either the link is down right now, or it died (and was possibly
    // repaired) after this segment started serializing — lost on the wire.
    ++lost_segments_;
    if (telem_) telem_->on_wire_drop(seg.stream, seg.bytes);
    return;
  }
  const NodeId n = topo_->link(l).dst;
  auto& st = streams_[static_cast<std::size_t>(seg.stream)];
  if (st.closed) return;

  seg.ingress = l;  // buffer occupancy downstream is charged to this port
  if (auto it = st.spec.forward.find(n); it != st.spec.forward.end()) {
    for (LinkId out : it->second) enqueue_segment(out, seg);
  }

  if (st.receiver_set.contains(n)) {
    Bytes& got = st.progress[n][seg.chunk];
    got += seg.bytes;
    if (telem_) telem_->on_deliver(seg.stream, n, seg.chunk, seg.bytes);
    if (seg.marked && config_.congestion_control) maybe_cnp(seg.stream, n);
    const auto want = st.chunk_bytes.find(seg.chunk);
    if (want != st.chunk_bytes.end() && got >= want->second) {
      if (on_delivery_) {
        on_delivery_(DeliveryEvent{seg.stream, st.spec.tag, n, seg.chunk});
      }
    }
  }
}

void Network::maybe_cnp(StreamId s, NodeId receiver) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  const SimTime now = queue_->now();
  if (st.spec.cnp_mode == CnpMode::ReceiverTimer) {
    auto [it, fresh] = st.last_cnp.try_emplace(receiver, kMinCnp);
    if (!fresh && now - it->second < config_.receiver_cnp_interval) return;
    it->second = now;
  }
  if (telem_) telem_->on_cnp(s, receiver, now);
  queue_->after(config_.cnp_delay, [this, s] {
    auto& stream = streams_[static_cast<std::size_t>(s)];
    if (!stream.closed) stream.cc.on_cnp(queue_->now());
  });
}

}  // namespace peel
