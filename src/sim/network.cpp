#include "src/sim/network.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace peel {

Network::Network(const Topology& topo, const SimConfig& config, EventQueue& queue)
    : topo_(&topo),
      config_(config),
      queue_(&queue),
      rng_(config.seed ^ 0x5eedf00dULL),
      links_(topo.link_count()),
      nodes_(topo.node_count()),
      blocked_pumps_(topo.node_count()) {
  config_.validate();
  pause_threshold_ = static_cast<Bytes>(
      static_cast<double>(config_.switch_buffer_bytes) *
      (1.0 - config_.pfc_pause_free_fraction));
  resume_threshold_ =
      std::max<Bytes>(0, pause_threshold_ - config_.pfc_hysteresis);
  in_slot_of_link_.assign(topo.link_count(), -1);
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const auto& ins = topo.in_links(static_cast<NodeId>(n));
    nodes_[n].per_ingress.assign(ins.size(), 0);
    std::int32_t slot = 0;
    for (LinkId l : ins) in_slot_of_link_[static_cast<std::size_t>(l)] = slot++;
  }
  queue_->bind_sink(this);
  if (config_.telemetry.enabled) {
    telem_ = std::make_unique<Telemetry>(config_.telemetry, topo);
    if (config_.telemetry.sample_interval > 0) {
      sampler_armed_ = true;
      queue_->after(config_.telemetry.sample_interval,
                    SimEvent{SimEventKind::SampleTick});
    }
  }
}

Network::~Network() {
  if (queue_->sink() == this) queue_->bind_sink(nullptr);
}

void Network::on_sim_event(const SimEvent& ev) {
  switch (ev.kind) {
    case SimEventKind::Pump:
      pump(ev.a);
      return;
    case SimEventKind::FinishTx:
      finish_tx(ev.a, ev.epoch);
      return;
    case SimEventKind::Arrive:
      arrive(ev.a, Segment{ev.b, ev.c, ev.d, ev.e, ev.flag}, ev.epoch);
      return;
    case SimEventKind::CnpRate: {
      auto& st = streams_[static_cast<std::size_t>(ev.a)];
      if (!st.closed) st.cc.on_cnp(queue_->now());
      return;
    }
    case SimEventKind::SampleTick:
      sample_tick();
      return;
    // Cross-domain PFC frames (sharded engine): the pause decision — and its
    // telemetry — happened on the buffer-owning (mirror) side when the frame
    // was posted; here the link's owning domain applies the state change to
    // the real serializer. The epoch guard drops frames that were in flight
    // when the link failed: the failure already cleared pause state on both
    // sides, and a stale pause must never wedge a repaired link.
    case SimEventKind::PfcPause: {
      auto& L = links_[static_cast<std::size_t>(ev.a)];
      if (L.fail_epoch == ev.epoch) L.pfc_paused = true;
      return;
    }
    case SimEventKind::PfcResume: {
      auto& L = links_[static_cast<std::size_t>(ev.a)];
      if (L.fail_epoch == ev.epoch && L.pfc_paused) {
        L.pfc_paused = false;
        if (L.blocked) try_start(ev.a);
      }
      return;
    }
    case SimEventKind::None:
      break;
  }
  throw std::logic_error("Network: unknown SimEvent kind");
}

void Network::post_pfc(SimEventKind kind, LinkId ingress) {
  if (xhook_ == nullptr) return;
  SimEvent ev;
  ev.kind = kind;
  ev.a = ingress;
  ev.epoch = links_[static_cast<std::size_t>(ingress)].fail_epoch;
  // The frame travels back to the link's sender: one propagation delay,
  // which is >= the shard lookahead for every cross-domain link.
  xhook_->post(queue_->now() + topo_->link(ingress).propagation, ev);
}

void Network::sample_tick() {
  telem_->sample(queue_->now());
  // Only stay alive while the simulation itself has work left; the sampler
  // must never be the event that keeps the queue from draining. send_chunk
  // re-arms it when new work shows up after a lapse.
  if (queue_->pending() > 0) {
    queue_->after(config_.telemetry.sample_interval,
                  SimEvent{SimEventKind::SampleTick});
  } else {
    sampler_armed_ = false;
  }
}

void Network::rearm_sampler() {
  if (telem_ && config_.telemetry.sample_interval > 0 && !sampler_armed_) {
    sampler_armed_ = true;
    queue_->after(config_.telemetry.sample_interval,
                  SimEvent{SimEventKind::SampleTick});
  }
}

StreamDiagnostic Network::stream_diagnostic(StreamId s) const {
  const auto& st = streams_[static_cast<std::size_t>(s)];
  StreamDiagnostic d;
  d.stream = s;
  d.tag = st.spec.tag;
  d.closed = st.closed;
  d.pump_blocked = st.pump_blocked;
  d.pump_scheduled = st.pump_scheduled;
  for (std::size_t i = st.pending_head; i < st.pending.size(); ++i) {
    ++d.pending_chunks;
    d.bytes_pending_injection += st.pending[i].bytes - st.pending[i].injected;
  }
  for (const auto& prog : st.progress) {
    for (std::size_t c = 0; c < st.chunk_want.size(); ++c) {
      const Bytes want = st.chunk_want[c];
      if (want <= 0) continue;
      const Bytes got = c < prog.size() ? prog[c] : 0;
      if (got < want) ++d.incomplete_deliveries;
    }
  }
  return d;
}

double Network::source_line_rate(const StreamSpec& spec) const {
  // The rate limiter physically sits at the NIC: walk through any leading
  // NVLink hop(s) and pace against the first fabric-facing link.  Pacing
  // against NVLink itself (900 B/ns) would let a GPU-sourced stream dump the
  // whole message into local buffers before congestion control can act.
  auto it = spec.forward.find(spec.source);
  if (it == spec.forward.end() || it->second.empty()) {
    throw std::invalid_argument("stream source has no out-links");
  }
  NodeId cursor = spec.source;
  for (int depth = 0; depth < 4; ++depth) {
    const auto hop = spec.forward.find(cursor);
    if (hop == spec.forward.end() || hop->second.empty()) break;
    double rate = topo_->link(hop->second.front()).rate.bytes_per_ns();
    bool all_nvlink = true;
    for (LinkId l : hop->second) {
      rate = std::min(rate, topo_->link(l).rate.bytes_per_ns());
      all_nvlink &= topo_->link(l).kind == LinkKind::NvLink;
    }
    if (!all_nvlink || hop->second.size() > 1) return rate;
    cursor = topo_->link(hop->second.front()).dst;
  }
  // Pure-NVLink stream (intra-host delivery): no NIC on the path.
  double rate = topo_->link(it->second.front()).rate.bytes_per_ns();
  for (LinkId l : it->second) {
    rate = std::min(rate, topo_->link(l).rate.bytes_per_ns());
  }
  return rate;
}

Bytes Network::max_queue_peak() const {
  Bytes peak = 0;
  for (const LinkState& l : links_) peak = std::max(peak, l.queue_peak);
  return peak;
}

StreamId Network::open_stream(StreamSpec spec) {
  const auto id = static_cast<StreamId>(streams_.size());
  const std::size_t node_count = topo_->node_count();
  StreamState st;
  const double line = source_line_rate(spec);
  st.cc = Dcqcn(config_.dcqcn, line, spec.cnp_mode, config_.sender_guard_interval);

  // Compile the forwarding map into CSR form: count out-degrees, prefix-sum
  // into offsets, then drop each node's out-links (in spec order) into its
  // slice. arrive() then replicates with two array reads and no hashing.
  st.fwd_offset.assign(node_count + 1, 0);
  std::size_t total_out = 0;
  for (const auto& [node, outs] : spec.forward) {
    if (node < 0 || static_cast<std::size_t>(node) >= node_count) {
      throw std::invalid_argument("stream forward map names an unknown node");
    }
    st.fwd_offset[static_cast<std::size_t>(node) + 1] =
        static_cast<std::int32_t>(outs.size());
    total_out += outs.size();
  }
  for (std::size_t n = 0; n < node_count; ++n) {
    st.fwd_offset[n + 1] += st.fwd_offset[n];
  }
  st.fwd_links.resize(total_out);
  for (const auto& [node, outs] : spec.forward) {
    std::copy(outs.begin(), outs.end(),
              st.fwd_links.begin() +
                  st.fwd_offset[static_cast<std::size_t>(node)]);
  }

  // Dense receiver index (deduplicated, first occurrence wins).
  st.recv_index.assign(node_count, -1);
  for (NodeId r : spec.receivers) {
    if (r < 0 || static_cast<std::size_t>(r) >= node_count) {
      throw std::invalid_argument("stream receiver list names an unknown node");
    }
    auto& slot = st.recv_index[static_cast<std::size_t>(r)];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(st.recv_nodes.size());
      st.recv_nodes.push_back(r);
    }
  }
  st.progress.resize(st.recv_nodes.size());
  st.last_cnp.assign(st.recv_nodes.size(), kMinCnp);

  st.spec = std::move(spec);
  streams_.push_back(std::move(st));
  if (telem_) {
    const StreamSpec& sp = streams_.back().spec;
    telem_->on_stream_open(id, sp.tag, sp.receivers);
  }
  return id;
}

StreamId Network::open_stream_stub() {
  const auto id = static_cast<StreamId>(streams_.size());
  streams_.emplace_back();  // no tables; keeps StreamIds aligned across domains
  return id;
}

void Network::note_chunk(StreamId stream, int chunk_index, Bytes bytes) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (st.closed) return;
  if (chunk_index < 0) {
    throw std::invalid_argument("chunk index must be non-negative");
  }
  const auto ci = static_cast<std::size_t>(chunk_index);
  if (st.chunk_want.size() <= ci) st.chunk_want.resize(ci + 1, 0);
  st.chunk_want[ci] = bytes;
}

void Network::send_chunk(StreamId stream, int chunk_index, Bytes bytes) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (st.closed) throw std::logic_error("send_chunk on closed stream");
  if (bytes <= 0) throw std::invalid_argument("chunk bytes must be positive");
  if (chunk_index < 0) {
    throw std::invalid_argument("chunk index must be non-negative");
  }
  const auto ci = static_cast<std::size_t>(chunk_index);
  if (st.chunk_want.size() <= ci) st.chunk_want.resize(ci + 1, 0);
  st.chunk_want[ci] = bytes;
  st.pending.push_back(PendingChunk{chunk_index, bytes, 0});
  if (!st.pump_scheduled) {
    st.pump_scheduled = true;
    queue_->after(0, SimEvent{SimEventKind::Pump, false, stream});
  }
  // A lapsed telemetry sampler (the event queue momentarily drained at a
  // tick) restarts with the new work instead of staying dead for the rest
  // of the run.
  if (telem_ && config_.telemetry.sample_interval > 0 && !sampler_armed_) {
    sampler_armed_ = true;
    queue_->after(config_.telemetry.sample_interval,
                  SimEvent{SimEventKind::SampleTick});
  }
}

std::vector<int> Network::cancel_unsent_chunks(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  std::vector<int> cancelled;
  // Keep the chunk currently mid-injection (if any); drop the rest.
  std::size_t keep = st.pending_head;
  if (keep < st.pending.size() && st.pending[keep].injected > 0) ++keep;
  for (std::size_t i = keep; i < st.pending.size(); ++i) {
    cancelled.push_back(st.pending[i].chunk);
    st.chunk_want[static_cast<std::size_t>(st.pending[i].chunk)] = 0;
  }
  st.pending.resize(keep);
  return cancelled;
}

void Network::close_stream(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  if (telem_ && !st.closed) {
    // Computed before the spec/progress are cleared below.
    telem_->on_stream_close(stream,
                            stream_diagnostic(stream).incomplete_deliveries == 0);
  }
  st.closed = true;
  // Release, don't just clear: fault-heavy runs open one recovery stream per
  // (collective, origin) per pass, and clear() retains each dead stream's
  // node-count-sized tables (fwd_offset, recv_index) forever — hundreds of
  // MiB of dead capacity across a flapping horizon.
  // NB: `v = {}` is initializer-list assignment and keeps capacity, exactly
  // like clear(); swapping with a default-constructed temporary frees it.
  auto release = [](auto& c) { std::decay_t<decltype(c)>{}.swap(c); };
  release(st.spec.forward);
  release(st.spec.receivers);
  release(st.fwd_offset);
  release(st.fwd_links);
  release(st.recv_index);
  release(st.recv_nodes);
  release(st.progress);
  release(st.last_cnp);
  release(st.chunk_want);
  release(st.pending);
  st.pending_head = 0;
}

void Network::on_duplex_failed(LinkId l) {
  for (LinkId dir : {l, topo_->reverse_of(l)}) {
    auto& L = links_[static_cast<std::size_t>(dir)];
    // Kill in-flight traffic even across a later repair: segments carry the
    // epoch their serialization started under, and arrive() drops stale ones.
    ++L.fail_epoch;
    // The segment mid-serialization (if any) is lost on the wire; its
    // arrival event will see the stale epoch and drop it. Everything still
    // queued behind it is lost here.
    std::size_t first_dropped = L.head + (L.busy ? 1 : 0);
    for (std::size_t i = first_dropped; i < L.q.size(); ++i) {
      const Segment& seg = L.q[i];
      L.queued -= seg.bytes;
      release_buffer(topo_->link(dir).src, seg.ingress, seg.bytes);
      ++lost_segments_;
      if (telem_) {
        telem_->on_queue_drop(dir, seg.stream, seg.bytes, L.queued,
                              queue_->now());
      }
    }
    L.q.resize(first_dropped);
    if (!L.busy) {
      L.q.clear();
      L.head = 0;
    }
    L.blocked = false;
    L.pfc_paused = false;
  }
}

void Network::on_duplex_restored(LinkId l) {
  ++duplex_repairs_;
  for (LinkId dir : {l, topo_->reverse_of(l)}) {
    auto& L = links_[static_cast<std::size_t>(dir)];
    // on_duplex_failed left the queue truncated and PFC state cleared; a
    // still-busy head belongs to the outage and finish_tx will retire it.
    // New segments start flowing the moment something enqueues.
    if (!L.busy) try_start(dir);
  }
}

void Network::pump(StreamId stream) {
  auto& st = streams_[static_cast<std::size_t>(stream)];
  st.pump_scheduled = false;
  if (st.closed) return;

  while (st.pending_head < st.pending.size()) {
    const SimTime now = queue_->now();
    // Backpressure: a paused source (its own egress buffers full, e.g. under
    // PFC from downstream) stops injecting; release_buffer re-arms the pump.
    if (nodes_[static_cast<std::size_t>(st.spec.source)].buffered >
        pause_threshold_) {
      st.pump_blocked = true;
      blocked_pumps_[static_cast<std::size_t>(st.spec.source)].push_back(stream);
      return;
    }
    if (st.pace_next > now) {
      st.pump_scheduled = true;
      queue_->at(st.pace_next, SimEvent{SimEventKind::Pump, false, stream});
      return;
    }
    const double rate = config_.congestion_control
                            ? st.cc.rate(now)
                            : st.cc.line_rate();
    auto& pc = st.pending[st.pending_head];
    const Bytes seg_bytes =
        std::min<Bytes>(config_.segment_bytes, pc.bytes - pc.injected);
    const Segment seg{stream, pc.chunk, static_cast<std::int32_t>(seg_bytes),
                      kInvalidLink, false};
    if (telem_) telem_->on_inject(stream, pc.chunk, seg_bytes);
    const auto src = static_cast<std::size_t>(st.spec.source);
    const std::int32_t out_begin = st.fwd_offset[src];
    const std::int32_t out_end = st.fwd_offset[src + 1];
    for (std::int32_t i = out_begin; i < out_end; ++i) {
      enqueue_segment(st.fwd_links[static_cast<std::size_t>(i)], seg);
    }
    pc.injected += seg_bytes;
    if (pc.injected == pc.bytes) {
      ++st.pending_head;
      if (st.pending_head == st.pending.size()) {
        st.pending.clear();
        st.pending_head = 0;
      }
    }
    const double tx_ns = static_cast<double>(seg_bytes) / rate;
    st.pace_next =
        std::max(st.pace_next, now) + static_cast<SimTime>(std::ceil(tx_ns));
  }
}

void Network::enqueue_segment(LinkId l, Segment seg) {
  if (topo_->link(l).failed) {
    ++lost_segments_;  // forwarding entry points at a dead port
    if (telem_) telem_->on_ingress_drop(seg.stream, seg.bytes);
    return;
  }
  auto& L = links_[static_cast<std::size_t>(l)];
  auto& N = nodes_[static_cast<std::size_t>(topo_->link(l).src)];

  // RED/ECN marking against the pre-enqueue egress depth. The kmax > kmin
  // guard keeps the step-ECN configuration (kmax == kmin: mark with pmax
  // certainty at the threshold) out of the divide.
  if (!seg.marked && config_.congestion_control) {
    if (L.queued >= config_.ecn_kmax) {
      seg.marked = true;
    } else if (L.queued > config_.ecn_kmin &&
               config_.ecn_kmax > config_.ecn_kmin) {
      const double p = config_.ecn_pmax *
                       static_cast<double>(L.queued - config_.ecn_kmin) /
                       static_cast<double>(config_.ecn_kmax - config_.ecn_kmin);
      if (rng_.next_double() < p) seg.marked = true;
    }
    if (seg.marked) {
      ++marked_segments_;
      if (telem_) telem_->on_ecn_mark(l);
    }
  }

  L.q.push_back(seg);
  L.queued += seg.bytes;
  L.queue_peak = std::max(L.queue_peak, L.queued);
  N.buffered += seg.bytes;
  if (telem_) {
    telem_->on_enqueue(l, seg.stream, seg.bytes, L.queued, queue_->now());
    telem_->on_node_buffer(topo_->link(l).src, N.buffered);
  }
  if (seg.ingress != kInvalidLink) {
    N.per_ingress[static_cast<std::size_t>(
        in_slot_of_link_[static_cast<std::size_t>(seg.ingress)])] += seg.bytes;
    // PFC: when the shared buffer crosses the stop threshold, pause the
    // ingress port that keeps contributing.
    auto& ingress_link = links_[static_cast<std::size_t>(seg.ingress)];
    if (N.buffered > pause_threshold_ && !ingress_link.pfc_paused) {
      ingress_link.pfc_paused = true;
      ++pfc_pauses_;
      if (telem_) telem_->on_pause(seg.ingress, queue_->now());
      // Sharded engine: if another domain owns the ingress link's
      // serializer, this flip only touched the local mirror — forward the
      // pause frame to the owner.
      post_pfc(SimEventKind::PfcPause, seg.ingress);
    }
  }
  if (!L.busy) try_start(l);
}

void Network::try_start(LinkId l) {
  auto& L = links_[static_cast<std::size_t>(l)];
  if (L.busy || L.head >= L.q.size()) return;
  const Link& lk = topo_->link(l);
  if (L.pfc_paused) {
    L.blocked = true;  // PFC: downstream asked us to hold off
    return;
  }
  L.blocked = false;
  L.busy = true;
  const Segment& seg = L.q[L.head];
  const SimTime end = queue_->now() + lk.rate.tx_time(seg.bytes);
  // Snapshot the fail epoch at serialization start: a failure at any point
  // before arrival (mid-serialization or mid-propagation) must lose the
  // segment, repair or no repair.
  queue_->at(end, SimEvent{SimEventKind::FinishTx, false, l, 0, 0, 0, 0,
                           L.fail_epoch});
}

void Network::finish_tx(LinkId l, std::uint32_t fail_epoch) {
  auto& L = links_[static_cast<std::size_t>(l)];
  const Link& lk = topo_->link(l);
  const Segment seg = L.q[L.head];
  ++L.head;
  if (L.head == L.q.size() || L.head > 1024) {
    L.q.erase(L.q.begin(), L.q.begin() + static_cast<std::ptrdiff_t>(L.head));
    L.head = 0;
  }
  L.queued -= seg.bytes;
  L.serialized += seg.bytes;
  total_bytes_ += seg.bytes;
  ++segments_serialized_;
  L.busy = false;
  if (telem_) {
    telem_->on_serialized(l, seg.stream, seg.bytes, L.queued, queue_->now());
  }

  release_buffer(lk.src, seg.ingress, seg.bytes);

  post_event(queue_->now() + lk.propagation,
             SimEvent{SimEventKind::Arrive, seg.marked, l, seg.stream,
                      seg.chunk, seg.bytes, seg.ingress, fail_epoch});
  try_start(l);
}

void Network::unpause(LinkId l) {
  auto& L = links_[static_cast<std::size_t>(l)];
  if (!L.pfc_paused) return;
  L.pfc_paused = false;
  if (telem_) telem_->on_unpause(l, queue_->now());
  if (L.blocked) try_start(l);
  post_pfc(SimEventKind::PfcResume, l);
}

void Network::release_buffer(NodeId n, LinkId ingress, Bytes bytes) {
  auto& N = nodes_[static_cast<std::size_t>(n)];
  N.buffered -= bytes;
  if (ingress != kInvalidLink) {
    Bytes& held =
        N.per_ingress[static_cast<std::size_t>(
            in_slot_of_link_[static_cast<std::size_t>(ingress)])];
    if (held <= 0) {
      throw std::logic_error("release_buffer: untracked ingress");
    }
    held -= bytes;
    if (held <= 0) {
      // This ingress no longer holds buffer here; resuming it regardless of
      // the total keeps independent directions from deadlocking each other.
      held = 0;
      unpause(ingress);
    }
  }
  if (N.buffered > resume_threshold_) return;
  for (LinkId in : topo_->in_links(n)) unpause(in);
  // Re-arm source pumps blocked on this node's buffer.
  auto& waiting_here = blocked_pumps_[static_cast<std::size_t>(n)];
  if (!waiting_here.empty()) {
    std::vector<StreamId> waiting = std::move(waiting_here);
    waiting_here.clear();
    for (StreamId s : waiting) {
      auto& st = streams_[static_cast<std::size_t>(s)];
      st.pump_blocked = false;
      if (!st.pump_scheduled && !st.closed) {
        st.pump_scheduled = true;
        queue_->after(0, SimEvent{SimEventKind::Pump, false, s});
      }
    }
  }
}

void Network::arrive(LinkId l, Segment seg, std::uint32_t fail_epoch) {
  if (topo_->link(l).failed ||
      links_[static_cast<std::size_t>(l)].fail_epoch != fail_epoch) {
    // Either the link is down right now, or it died (and was possibly
    // repaired) after this segment started serializing — lost on the wire.
    ++lost_segments_;
    if (telem_) telem_->on_wire_drop(seg.stream, seg.bytes);
    return;
  }
  const NodeId n = topo_->link(l).dst;
  auto& st = streams_[static_cast<std::size_t>(seg.stream)];
  if (st.closed) return;

  seg.ingress = l;  // buffer occupancy downstream is charged to this port
  const auto ni = static_cast<std::size_t>(n);
  const std::int32_t out_begin = st.fwd_offset[ni];
  const std::int32_t out_end = st.fwd_offset[ni + 1];
  for (std::int32_t i = out_begin; i < out_end; ++i) {
    enqueue_segment(st.fwd_links[static_cast<std::size_t>(i)], seg);
  }

  const std::int32_t ri = st.recv_index[ni];
  if (ri >= 0) {
    auto& prog = st.progress[static_cast<std::size_t>(ri)];
    const auto ci = static_cast<std::size_t>(seg.chunk);
    if (prog.size() <= ci) prog.resize(ci + 1, 0);
    Bytes& got = prog[ci];
    got += seg.bytes;
    if (telem_) telem_->on_deliver(seg.stream, n, seg.chunk, seg.bytes);
    if (seg.marked && config_.congestion_control) maybe_cnp(seg.stream, ri, n);
    const Bytes want = ci < st.chunk_want.size() ? st.chunk_want[ci] : 0;
    if (want > 0 && got >= want) {
      if (on_delivery_) {
        on_delivery_(DeliveryEvent{seg.stream, st.spec.tag, n, seg.chunk});
      }
    }
  }
}

void Network::maybe_cnp(StreamId s, std::int32_t recv_idx, NodeId receiver) {
  auto& st = streams_[static_cast<std::size_t>(s)];
  const SimTime now = queue_->now();
  if (st.spec.cnp_mode == CnpMode::ReceiverTimer) {
    SimTime& last = st.last_cnp[static_cast<std::size_t>(recv_idx)];
    // kMinCnp is far enough in the past that a fresh receiver always passes.
    if (now - last < config_.receiver_cnp_interval) return;
    last = now;
  }
  if (telem_) telem_->on_cnp(s, receiver, now);
  post_event(now + config_.cnp_delay, SimEvent{SimEventKind::CnpRate, false, s});
}

}  // namespace peel
