#include "src/sim/sharded.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace peel {

namespace {

constexpr SimTime kNoHorizon = SimTime{1} << 62;

/// Spin-with-backoff used at both barrier edges: short windows make a
/// condvar round-trip per window more expensive than the window itself.
inline void relax(int& spins) {
  if (++spins >= 256) {
    std::this_thread::yield();
    spins = 0;
  }
}

}  // namespace

bool ShardedNetwork::DomainHook::post(SimTime t, const SimEvent& ev) {
  return owner->route(domain, t, ev);
}

ShardedNetwork::ShardedNetwork(const Topology& topo, const SimConfig& config,
                               int threads)
    : topo_(&topo), plan_(build_shard_plan(topo)), config_(config) {
  domain_total_ = plan_.domains;
  if (plan_.cross_links > 0) {
    if (plan_.lookahead <= 0) {
      throw std::invalid_argument(
          "sharded engine: a cross-domain link has zero propagation, which "
          "defeats the conservative lookahead");
    }
    xdelay_ = plan_.lookahead;
    if (config.congestion_control && config.cnp_delay < plan_.lookahead) {
      throw std::invalid_argument(
          "sharded engine: cnp_delay (" + std::to_string(config.cnp_delay) +
          " ns) is below the cross-domain lookahead (" +
          std::to_string(plan_.lookahead) +
          " ns); CNP feedback would violate causality");
    }
  }

  domains_.reserve(static_cast<std::size_t>(domain_total_));
  for (int d = 0; d < domain_total_; ++d) {
    auto dom = std::make_unique<Domain>();
    SimConfig dc = config;
    // Per-domain RNG stream, a pure function of (scenario seed, domain id):
    // the decomposition is fixed, so ECN draws are thread-count invariant.
    dc.seed = config.seed +
              0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(d + 1);
    dom->net = std::make_unique<Network>(topo, dc, dom->queue);
    dom->hook.owner = this;
    dom->hook.domain = d;
    dom->net->set_cross_domain_hook(&dom->hook);
    dom->outbox.resize(static_cast<std::size_t>(domain_total_));
    dom->net->set_delivery_handler([this, d](const DeliveryEvent& ev) {
      Domain& mine = *domains_[static_cast<std::size_t>(d)];
      mine.deliveries.emplace_back(mine.queue.now(), ev);
    });
    domains_.push_back(std::move(dom));
  }

  workers_ = std::clamp(threads, 1, domain_total_);
  if (workers_ > 1) {
    threads_.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

ShardedNetwork::~ShardedNetwork() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) t.join();
}

// ---------------------------------------------------------------------------
// Cross-domain routing

bool ShardedNetwork::route(int from, SimTime t, const SimEvent& ev) {
  int target;
  switch (ev.kind) {
    case SimEventKind::Arrive:
      target = plan_.domain_of_node(topo_->link(ev.a).dst);
      break;
    case SimEventKind::CnpRate: {
      // Reduce streams fan one CNP per injector (ev.b = injector index);
      // each rate limiter lives with its contributor's endpoint.
      const StreamInfo& si = streams_[static_cast<std::size_t>(ev.a)];
      target = si.injector_domain.empty()
                   ? si.src_domain
                   : si.injector_domain[static_cast<std::size_t>(ev.b)];
      break;
    }
    case SimEventKind::PfcPause:
    case SimEventKind::PfcResume:
      target = plan_.domain_of_node(topo_->link(ev.a).src);
      break;
    default:
      return false;  // pump/finish/sample never leave their domain
  }
  // Domain-local: Arrive/CnpRate go back onto the local queue (return
  // false); a PFC frame to ourselves is swallowed — the decision site's
  // state flip already IS the real serializer state.
  if (target == from) return ev.kind == SimEventKind::PfcPause ||
                             ev.kind == SimEventKind::PfcResume;
  domains_[static_cast<std::size_t>(from)]
      ->outbox[static_cast<std::size_t>(target)]
      .push_back(Mail{t, ev});
  return true;
}

void ShardedNetwork::drain_windows() {
  // Destination-major, source-domain-minor, FIFO within a mailbox: the
  // destination queue's own sequence counter then realizes exactly the
  // (t, source domain, seq) deterministic cross-domain merge.
  for (int dst = 0; dst < domain_total_; ++dst) {
    Domain& target = *domains_[static_cast<std::size_t>(dst)];
    bool delivered = false;
    for (int src = 0; src < domain_total_; ++src) {
      auto& box =
          domains_[static_cast<std::size_t>(src)]->outbox[static_cast<std::size_t>(dst)];
      for (const Mail& m : box) target.queue.at(m.t, m.ev);
      delivered = delivered || !box.empty();
      box.clear();
    }
    // Fresh cross-domain work restarts a lapsed telemetry sampler, the same
    // way send_chunk does on the source domain.
    if (delivered) target.net->rearm_sampler();
  }
  // Delivery callbacks replay sequentially on the control queue, one
  // lookahead later (the notification's wire delay), in (t, domain,
  // collection order) — deterministic at any thread count.
  for (int d = 0; d < domain_total_; ++d) {
    Domain& dom = *domains_[static_cast<std::size_t>(d)];
    for (const auto& [t, ev] : dom.deliveries) {
      if (on_delivery_) {
        control_.at(t + xdelay_, [this, ev = ev] { on_delivery_(ev); });
      }
    }
    dom.deliveries.clear();
  }
}

// ---------------------------------------------------------------------------
// Window loop

void ShardedNetwork::run_domains(SimTime horizon) {
  if (workers_ <= 1) {
    for (auto& dom : domains_) dom->queue.run_window(horizon);
    return;
  }
  horizon_ = horizon;
  ++windows_issued_;
  go_.fetch_add(1, std::memory_order_release);
  const std::uint64_t want =
      windows_issued_ * static_cast<std::uint64_t>(workers_);
  int spins = 0;
  while (done_.load(std::memory_order_acquire) != want) relax(spins);
  for (auto& dom : domains_) {
    if (dom->error) {
      std::exception_ptr err = dom->error;
      dom->error = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void ShardedNetwork::worker_main(int wid) {
  std::uint64_t seen = 0;
  int spins = 0;
  for (;;) {
    while (go_.load(std::memory_order_acquire) == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      relax(spins);
    }
    ++seen;
    const SimTime h = horizon_;  // ordered by the go_ release/acquire pair
    for (int d = wid; d < domain_total_; d += workers_) {
      Domain& dom = *domains_[static_cast<std::size_t>(d)];
      try {
        dom.queue.run_window(h);
      } catch (...) {
        dom.error = std::current_exception();
      }
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ShardedNetwork::advance(bool bounded, SimTime deadline) {
  for (;;) {
    SimTime w = kNoHorizon;
    SimTime tc = kNoHorizon;
    bool any = false;
    if (SimTime t = 0; control_.next_event_time(t)) {
      tc = t;
      w = t;
      any = true;
    }
    for (auto& dom : domains_) {
      if (SimTime t = 0; dom->queue.next_event_time(t)) {
        w = std::min(w, t);
        any = true;
      }
    }
    if (!any) break;
    if (bounded && w > deadline) break;

    if (tc == w) {
      // Control step: run every control closure due at exactly W, with all
      // domain clocks advanced to W first so data-plane calls made from the
      // closures (send_chunk -> pump, fault application) land at W sharp.
      // Domains cannot hold an event earlier than the global minimum, so
      // advance_to's precondition holds.
      for (auto& dom : domains_) dom->queue.advance_to(w);
      control_.run_until(w);
      drain_windows();  // cross-domain posts made by the closures
      continue;
    }

    // Parallel window: no domain may run past the next control event (the
    // control plane has zero lookahead into the data plane), nor past
    // W + lookahead (the earliest instant a cross-domain message generated
    // this window could be due).
    SimTime horizon = xdelay_ > 0 ? w + xdelay_ : kNoHorizon;
    horizon = std::min(horizon, tc);
    if (bounded) horizon = std::min(horizon, deadline + 1);

    // Adaptive window execution: a dense control plane clamps `horizon` to
    // the next control event, shrinking windows until most carry events in
    // one domain only. Waking the pool for such a window pays a barrier
    // round-trip for zero parallelism, so run a lone busy domain inline.
    // Byte-identical by construction: every skipped domain's next event is
    // >= horizon, so its run_window(horizon) would process nothing (and
    // run_window never advances a clock past the events it runs).
    EventQueue* busy = nullptr;
    int busy_count = 0;
    for (auto& dom : domains_) {
      if (SimTime t = 0; dom->queue.next_event_time(t) && t < horizon) {
        busy = &dom->queue;
        if (++busy_count > 1) break;
      }
    }
    if (busy_count == 1) {
      ++windows_inline_;
      busy->run_window(horizon);
    } else {
      ++windows_parallel_;
      run_domains(horizon);
    }
    drain_windows();
  }

  if (bounded) {
    control_.run_until(deadline);
    for (auto& dom : domains_) dom->queue.advance_to(deadline);
  }
}

void ShardedNetwork::run() { advance(false, 0); }

void ShardedNetwork::run_until(SimTime t) { advance(true, t); }

// ---------------------------------------------------------------------------
// DataPlane

StreamId ShardedNetwork::open_stream(StreamSpec spec) {
  // Footprint: every domain that pumps, forwards, terminates a forwarded
  // link, or receives. Those get a real replica (full forwarding table,
  // receivers filtered to domain-owned nodes); the rest get an id-aligning
  // stub that no event will ever reference.
  std::vector<char> in_footprint(static_cast<std::size_t>(domain_total_), 0);
  auto mark = [&](NodeId n) {
    in_footprint[static_cast<std::size_t>(plan_.domain_of_node(n))] = 1;
  };
  mark(spec.source);
  for (const auto& [node, outs] : spec.forward) {
    mark(node);
    for (LinkId l : outs) mark(topo_->link(l).dst);
  }
  for (NodeId r : spec.receivers) mark(r);
  for (NodeId c : spec.contributors) mark(c);

  StreamInfo info;
  info.src_domain = plan_.domain_of_node(spec.source);
  for (NodeId c : spec.contributors) {
    info.injector_domain.push_back(plan_.domain_of_node(c));
  }
  info.injector_domains = info.injector_domain;
  std::sort(info.injector_domains.begin(), info.injector_domains.end());
  info.injector_domains.erase(
      std::unique(info.injector_domains.begin(), info.injector_domains.end()),
      info.injector_domains.end());
  StreamId id = -1;
  for (int d = 0; d < domain_total_; ++d) {
    Network& net = *domains_[static_cast<std::size_t>(d)]->net;
    StreamId got;
    if (in_footprint[static_cast<std::size_t>(d)] == 0) {
      got = net.open_stream_stub();
    } else {
      StreamSpec per = spec;
      per.receivers.clear();
      for (NodeId r : spec.receivers) {
        if (plan_.domain_of_node(r) == d) per.receivers.push_back(r);
      }
      if (!spec.contributors.empty()) {
        // Every replica keeps the full contributor list (combiner child
        // slots and CNP injector indices must align across domains); the
        // mask says which injectors THIS replica paces.
        per.contributor_local.resize(spec.contributors.size());
        for (std::size_t i = 0; i < spec.contributors.size(); ++i) {
          per.contributor_local[i] =
              static_cast<std::uint8_t>(info.injector_domain[i] == d ? 1 : 0);
        }
      }
      got = net.open_stream(std::move(per));
      info.footprint.push_back(d);
    }
    if (id < 0) {
      id = got;
    } else if (got != id) {
      throw std::logic_error("sharded engine: stream ids drifted across domains");
    }
  }
  streams_.push_back(std::move(info));
  return id;
}

void ShardedNetwork::send_chunk(StreamId stream, int chunk_index, Bytes bytes) {
  const StreamInfo& info = streams_[static_cast<std::size_t>(stream)];
  // Pacing state lives with the injecting endpoints: the source domain for a
  // multicast, every contributor-owning domain for a reduce stream. The
  // remaining footprint domains only mirror the chunk's target size so
  // arrivals there can complete (receiver, chunk) deliveries.
  const auto paces = [&](int d) {
    if (info.injector_domains.empty()) return d == info.src_domain;
    return std::binary_search(info.injector_domains.begin(),
                              info.injector_domains.end(), d);
  };
  for (int d : info.footprint) {
    Network& net = *domains_[static_cast<std::size_t>(d)]->net;
    if (paces(d)) {
      net.send_chunk(stream, chunk_index, bytes);
    } else {
      net.note_chunk(stream, chunk_index, bytes);
    }
  }
}

std::vector<int> ShardedNetwork::cancel_unsent_chunks(StreamId stream) {
  const StreamInfo& info = streams_[static_cast<std::size_t>(stream)];
  std::vector<int> cancelled = domains_[static_cast<std::size_t>(info.src_domain)]
                                   ->net->cancel_unsent_chunks(stream);
  for (int d : info.footprint) {
    if (d == info.src_domain) continue;
    Network& net = *domains_[static_cast<std::size_t>(d)]->net;
    for (int chunk : cancelled) net.note_chunk(stream, chunk, 0);
  }
  return cancelled;
}

void ShardedNetwork::close_stream(StreamId stream) {
  const StreamInfo& info = streams_[static_cast<std::size_t>(stream)];
  for (int d : info.footprint) {
    domains_[static_cast<std::size_t>(d)]->net->close_stream(stream);
  }
}

void ShardedNetwork::on_duplex_failed(LinkId l) {
  // Every replica mirrors link state (fail epochs, PFC bits); queued-segment
  // loss only materializes in the owning domain, where the queues live.
  for (auto& dom : domains_) dom->net->on_duplex_failed(l);
}

void ShardedNetwork::on_duplex_restored(LinkId l) {
  for (auto& dom : domains_) dom->net->on_duplex_restored(l);
}

bool ShardedNetwork::stream_uses_link(StreamId s, LinkId l) const {
  const StreamInfo& info = streams_[static_cast<std::size_t>(s)];
  // Any footprint replica holds the full forwarding table; the source
  // domain's is always real.
  return domains_[static_cast<std::size_t>(info.src_domain)]
      ->net->stream_uses_link(s, l);
}

StreamDiagnostic ShardedNetwork::stream_diagnostic(StreamId s) const {
  const StreamInfo& info = streams_[static_cast<std::size_t>(s)];
  StreamDiagnostic d = domains_[static_cast<std::size_t>(info.src_domain)]
                           ->net->stream_diagnostic(s);
  // Receiver progress is partitioned across the footprint (each replica
  // tracks only domain-owned receivers), and a reduce stream's injector
  // pending state is partitioned the same way; multicast pump state lives
  // at the source alone (other replicas report zeros).
  for (int fd : info.footprint) {
    if (fd == info.src_domain) continue;
    const StreamDiagnostic part =
        domains_[static_cast<std::size_t>(fd)]->net->stream_diagnostic(s);
    d.incomplete_deliveries += part.incomplete_deliveries;
    d.pending_chunks += part.pending_chunks;
    d.bytes_pending_injection += part.bytes_pending_injection;
    d.pump_blocked |= part.pump_blocked;
    d.pump_scheduled |= part.pump_scheduled;
  }
  return d;
}

Bytes ShardedNetwork::link_bytes(LinkId l) const {
  return domains_[static_cast<std::size_t>(plan_.domain_of_link(l))]
      ->net->link_bytes(l);
}

// ---------------------------------------------------------------------------
// Merged views

bool ShardedNetwork::empty() const {
  if (!control_.empty()) return false;
  for (const auto& dom : domains_) {
    if (!dom->queue.empty()) return false;
  }
  return true;
}

SimTime ShardedNetwork::now() const {
  SimTime t = control_.now();
  for (const auto& dom : domains_) t = std::max(t, dom->queue.now());
  return t;
}

std::uint64_t ShardedNetwork::events_processed() const {
  std::uint64_t n = control_.processed();
  for (const auto& dom : domains_) n += dom->queue.processed();
  return n;
}

Bytes ShardedNetwork::total_bytes_serialized() const {
  Bytes n = 0;
  for (const auto& dom : domains_) n += dom->net->total_bytes_serialized();
  return n;
}

std::uint64_t ShardedNetwork::segments_serialized() const {
  std::uint64_t n = 0;
  for (const auto& dom : domains_) n += dom->net->segments_serialized();
  return n;
}

std::uint64_t ShardedNetwork::segments_marked() const {
  std::uint64_t n = 0;
  for (const auto& dom : domains_) n += dom->net->segments_marked();
  return n;
}

std::uint64_t ShardedNetwork::pfc_pauses() const {
  // Counted at the pause decision site (the buffer-owning domain) only; the
  // owner-side frame handlers deliberately skip counters.
  std::uint64_t n = 0;
  for (const auto& dom : domains_) n += dom->net->pfc_pauses();
  return n;
}

std::uint64_t ShardedNetwork::segments_lost() const {
  std::uint64_t n = 0;
  for (const auto& dom : domains_) n += dom->net->segments_lost();
  return n;
}

std::uint64_t ShardedNetwork::duplex_repairs() const {
  // Every replica increments on the same restore call — read one, not the sum.
  return domains_.front()->net->duplex_repairs();
}

Bytes ShardedNetwork::reduce_sram_peak() const {
  Bytes n = 0;
  for (const auto& dom : domains_) n += dom->net->reduce_sram_peak();
  return n;
}

Bytes ShardedNetwork::reduce_sram_peak_max_domain() const {
  Bytes peak = 0;
  for (const auto& dom : domains_) {
    peak = std::max(peak, dom->net->reduce_sram_peak());
  }
  return peak;
}

Bytes ShardedNetwork::max_queue_peak() const {
  Bytes peak = 0;
  for (const auto& dom : domains_) {
    peak = std::max(peak, dom->net->max_queue_peak());
  }
  return peak;
}

bool ShardedNetwork::telemetry_enabled() const {
  return domains_.front()->net->telemetry() != nullptr;
}

void ShardedNetwork::reserve_series(std::size_t expected_samples) {
  for (auto& dom : domains_) {
    if (Telemetry* t = dom->net->telemetry()) {
      t->reserve_series(expected_samples);
    }
  }
}

const Telemetry* ShardedNetwork::merged_telemetry() const {
  if (!telemetry_enabled()) return nullptr;
  merged_telem_ = std::make_unique<Telemetry>(config_.telemetry, *topo_);
  for (const auto& dom : domains_) {
    merged_telem_->merge_from(*dom->net->telemetry());
  }
  return merged_telem_.get();
}

}  // namespace peel
