// Telemetry and invariant layer for the packet-level simulator.
//
// The Network calls the passive hooks below on every data-plane transition;
// the Telemetry object turns them into three artifacts:
//
//   1. Counters — per-link (bytes/segments serialized, ECN marks, PFC pauses
//      and total paused time, peak and time-weighted queue depth) and
//      per-switch (the same aggregated over the switch's egress ports, plus
//      shared-buffer peak occupancy), with optional fixed-interval
//      time-series samples of fabric-wide queue state.
//
//   2. A byte-conservation audit — per stream, every byte injected at the
//      source must be delivered to exactly the stream's receiver set, with
//      hop-by-hop replication accounted: at drain, bytes enqueued on links
//      equal bytes serialized plus bytes lost to failures, and no receiver
//      is ever credited more bytes of a chunk than were injected
//      ("exactly once per destination").
//
//   3. Trace events — PFC pause spans and CNP emissions (plus flow
//      lifetimes filled in by the harness) for the Chrome-trace exporter in
//      src/sim/trace.h.
//
// All hooks are passive: they never draw randomness, never schedule events
// that change behavior, and never touch stream state — enabling telemetry
// cannot perturb a simulation's results.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/sim/config.h"
#include "src/topology/topology.h"

namespace peel {

/// Final per-link counters (one row of the telemetry CSV).
struct LinkTelemetry {
  LinkId link = kInvalidLink;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  LinkKind kind = LinkKind::Fabric;
  Bytes bytes = 0;                 ///< bytes serialized onto the wire
  std::uint64_t segments = 0;      ///< segments serialized
  std::uint64_t ecn_marks = 0;     ///< segments CE-marked at this egress
  std::uint64_t pfc_pauses = 0;    ///< pause transitions of this link's sender
  SimTime pfc_pause_time = 0;      ///< total time spent PFC-paused
  Bytes queue_peak = 0;            ///< egress queue high-water mark
  double mean_queue_bytes = 0.0;   ///< time-weighted average egress depth
};

/// Per-switch counters: the switch's egress ports aggregated, plus shared
/// buffer occupancy.
struct SwitchTelemetry {
  NodeId node = kInvalidNode;
  NodeKind kind = NodeKind::Tor;
  Bytes forwarded_bytes = 0;
  std::uint64_t forwarded_segments = 0;
  std::uint64_t ecn_marks = 0;
  std::uint64_t pfc_pauses = 0;
  SimTime pfc_pause_time = 0;
  Bytes buffer_peak = 0;  ///< shared-buffer occupancy high-water mark
};

/// One fixed-interval sample of fabric-wide queue state.
struct QueueSample {
  SimTime t = 0;
  Bytes total_queued = 0;       ///< sum of all egress queues
  Bytes max_link_queued = 0;    ///< deepest single egress queue
  std::int32_t queued_links = 0;  ///< links with a non-empty egress queue
  std::int32_t paused_links = 0;  ///< links currently PFC-paused
};

/// A closed PFC pause interval on one link (trace export).
struct PauseSpan {
  LinkId link = kInvalidLink;
  SimTime begin = 0;
  SimTime end = 0;
};

/// One CNP emission (trace export).
struct CnpEvent {
  std::int32_t stream = -1;
  NodeId receiver = kInvalidNode;
  SimTime t = 0;
};

/// One collective's lifetime — filled by the harness from CollectiveRecords
/// (the Network does not know about collectives).
struct FlowSpan {
  std::uint64_t id = 0;
  std::string name;  ///< e.g. "PEEL #3"
  SimTime begin = 0;
  SimTime end = 0;
  bool finished = false;
};

/// Everything a finished run's telemetry boils down to; cheap to copy around
/// via shared_ptr in ScenarioResult.
struct TelemetrySummary {
  SimTime duration = 0;
  std::vector<LinkTelemetry> links;
  std::vector<SwitchTelemetry> switches;
  std::vector<QueueSample> samples;
  std::vector<PauseSpan> pauses;
  std::vector<CnpEvent> cnps;
  std::vector<FlowSpan> flows;
};

class Telemetry {
 public:
  Telemetry(const TelemetryConfig& config, const Topology& topo);

  [[nodiscard]] const TelemetryConfig& config() const noexcept { return config_; }

  // --- hooks (called by Network; see network.cpp) -------------------------
  void on_stream_open(std::int32_t stream, std::uint64_t tag,
                      const std::vector<NodeId>& receivers);
  /// Bytes of `chunk` injected at the stream's source (counted once, before
  /// source-side replication onto out-links).
  void on_inject(std::int32_t stream, int chunk, Bytes bytes);
  void on_enqueue(LinkId l, std::int32_t stream, Bytes bytes, Bytes new_depth,
                  SimTime now);
  void on_ecn_mark(LinkId l);
  void on_serialized(LinkId l, std::int32_t stream, Bytes bytes,
                     Bytes new_depth, SimTime now);
  /// A queued segment dropped by a mid-run duplex failure.
  void on_queue_drop(LinkId l, std::int32_t stream, Bytes bytes,
                     Bytes new_depth, SimTime now);
  /// A segment lost on the wire (arrived over a link that died in flight).
  void on_wire_drop(std::int32_t stream, Bytes bytes);
  /// A segment bound for a dead egress port (never enqueued).
  void on_ingress_drop(std::int32_t stream, Bytes bytes);
  void on_pause(LinkId l, SimTime now);
  void on_unpause(LinkId l, SimTime now);
  void on_node_buffer(NodeId n, Bytes depth);
  void on_cnp(std::int32_t stream, NodeId receiver, SimTime now);
  /// Bytes of `chunk` credited to `receiver` (a member of the stream's
  /// receiver set).
  void on_deliver(std::int32_t stream, NodeId receiver, int chunk, Bytes bytes);
  /// Stream closed by its owner. `complete` = every (receiver, chunk) had
  /// reached its target. Closing an incomplete stream is a deliberate
  /// hand-off (the collective finished through other streams, e.g. recovery
  /// racing the original tree), so such streams are exempt from the
  /// under-delivery check — over-delivery and hop conservation still apply.
  void on_stream_close(std::int32_t stream, bool complete);

  // --- reduction ledger (in-network reduce streams) -----------------------
  // In-switch combining legitimately "destroys" bytes (k child segments
  // leave as one), so the generic injected-vs-delivered identity cannot
  // audit a reduce stream. These hooks build the replacement: a first-class
  // ledger of who owed what. Per chunk the contract is
  //   every contributor injects target bytes exactly once,
  //   every combiner child link delivers exactly target bytes,
  //   every combiner forwards exactly target combined bytes,
  //   the root is credited exactly target bytes,
  // checked as `> target` anytime (double-count) and `== target` at drain
  // (exactly-once) for streams that closed complete and lost nothing.
  /// Declares `stream` an in-network reduction with this contributor set.
  void on_reduce_open(std::int32_t stream,
                      const std::vector<NodeId>& contributors);
  /// Per-chunk target: the bytes each rank owes (send_chunk/note_chunk).
  void on_reduce_target(std::int32_t stream, int chunk, Bytes bytes);
  /// `contributor` injected `bytes` of `chunk` (subset of on_inject).
  void on_reduce_contribute(std::int32_t stream, NodeId contributor, int chunk,
                            Bytes bytes);
  /// A combiner absorbed `bytes` of `chunk` over child link `l`.
  void on_reduce_absorb(std::int32_t stream, LinkId l, int chunk, Bytes bytes);
  /// Combiner at `node` advanced `chunk`'s combined frontier by `bytes`
  /// (forwarded upstream, or credited to the root when `node` is the root).
  void on_reduce_emit(std::int32_t stream, NodeId node, int chunk, Bytes bytes);

  /// Records one QueueSample at `now` (driven by the Network's sampler).
  void sample(SimTime now);

  /// Capacity hint for the queue-depth time series. A sampler that fires
  /// every interval for the whole run otherwise reallocates-and-copies the
  /// series log2(n) times; a caller that knows the horizon (the harness)
  /// reserves once up front. A hint, never a cap.
  void reserve_series(std::size_t expected_samples) {
    samples_.reserve(expected_samples);
  }

  // --- invariants ---------------------------------------------------------
  /// "Exactly once per destination": streams where some receiver was
  /// credited MORE bytes of a chunk than the source injected. Always a bug
  /// (duplicate replication), valid at any point in the run.
  [[nodiscard]] std::vector<std::string> over_delivery_violations() const;

  /// Full byte-conservation report. Only meaningful once the event queue has
  /// drained and every collective finished: per stream, (a) bytes enqueued
  /// on links == bytes serialized + bytes dropped from queues by failures
  /// (hop-by-hop replication accounted, no residue stuck in queues), and
  /// (b) every receiver was credited exactly the injected bytes of every
  /// chunk — unless the stream lost segments to failures, in which case
  /// under-delivery is the expected symptom and only over-delivery counts.
  /// Includes over_delivery_violations(). Empty == audit passed.
  [[nodiscard]] std::vector<std::string> conservation_violations() const;

  /// Snapshot of all counters with time-weighted values closed out at `now`
  /// (open pause intervals are accounted up to `now`). `flows` is left empty
  /// for the harness to fill.
  [[nodiscard]] TelemetrySummary summary(SimTime now) const;

  /// Folds another Telemetry (same config, same topology) into this one.
  ///
  /// The sharded engine runs one Telemetry per pod domain; each accumulator
  /// field has exactly one writing domain (link serializer counters live in
  /// the link's src domain, PFC pause spans in the buffer-owning dst domain,
  /// per-receiver delivery credits in the receiver's domain), so summing is
  /// exact, peaks merge by max, and closed_incomplete flags OR together.
  /// Queue-depth samples merge by timestamp; trace events concatenate in the
  /// caller's (domain-id) order. Call on a fresh instance, folding domains
  /// in ascending id order, to get a summary equivalent to a single global
  /// Telemetry's.
  void merge_from(const Telemetry& other);

 private:
  struct LinkAccum {
    Bytes bytes = 0;
    std::uint64_t segments = 0;
    std::uint64_t ecn_marks = 0;
    std::uint64_t pfc_pauses = 0;
    SimTime pause_time = 0;
    SimTime pause_begin = -1;  ///< -1 when not currently paused
    Bytes depth = 0;           ///< mirror of the egress queue depth
    Bytes peak = 0;
    double depth_integral = 0.0;  ///< ∫ depth dt, for time-weighted average
    SimTime last_change = 0;
  };

  struct NodeAccum {
    Bytes buffer_peak = 0;
  };

  struct StreamAccum {
    std::uint64_t tag = 0;
    std::vector<NodeId> receivers;
    std::unordered_map<int, Bytes> injected;  ///< chunk -> bytes at source
    /// receiver -> chunk -> bytes credited.
    std::unordered_map<NodeId, std::unordered_map<int, Bytes>> delivered;
    Bytes enqueued = 0;
    Bytes serialized = 0;
    Bytes lost_queued = 0;   ///< dropped from queues by failures
    Bytes lost_wire = 0;     ///< lost in flight on a dying link
    Bytes lost_ingress = 0;  ///< bound for an already-dead port
    /// Owner closed the stream before every delivery completed (superseded
    /// by another stream); exempts it from the under-delivery check.
    bool closed_incomplete = false;

    // Reduction ledger (reduce == true streams only; see on_reduce_open).
    bool reduce = false;
    std::vector<NodeId> contributors;
    std::unordered_map<int, Bytes> reduce_target;  ///< chunk -> per-rank bytes
    /// contributor -> chunk -> bytes injected.
    std::unordered_map<NodeId, std::unordered_map<int, Bytes>> contributed;
    /// child link -> chunk -> bytes absorbed at the link's combiner.
    std::unordered_map<LinkId, std::unordered_map<int, Bytes>> absorbed;
    /// combiner node -> chunk -> combined bytes forwarded/credited.
    std::unordered_map<NodeId, std::unordered_map<int, Bytes>> emitted;
  };

  void advance_depth(LinkAccum& a, Bytes new_depth, SimTime now);
  [[nodiscard]] StreamAccum& stream(std::int32_t s);

  TelemetryConfig config_;
  const Topology* topo_;
  std::vector<LinkAccum> links_;
  std::vector<NodeAccum> nodes_;
  std::vector<StreamAccum> streams_;
  std::vector<QueueSample> samples_;
  std::vector<PauseSpan> pauses_;
  std::vector<CnpEvent> cnps_;
};

}  // namespace peel
