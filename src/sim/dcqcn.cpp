#include "src/sim/dcqcn.h"

#include <algorithm>

namespace peel {

Dcqcn::Dcqcn(const DcqcnParams& params, double line_rate_bytes_per_ns, CnpMode mode,
             SimTime guard_interval)
    : p_(params),
      line_rate_(line_rate_bytes_per_ns),
      mode_(mode),
      guard_(guard_interval),
      rc_(line_rate_bytes_per_ns),
      rt_(line_rate_bytes_per_ns),
      alpha_(1.0) {}

void Dcqcn::advance(SimTime now) {
  if (now <= clock_) return;
  const SimTime elapsed = now - clock_;
  clock_ = now;

  // Alpha decays once per alpha_timer without a reaction.
  alpha_credit_ += elapsed;
  while (alpha_credit_ >= p_.alpha_timer) {
    alpha_credit_ -= p_.alpha_timer;
    alpha_ *= (1.0 - p_.g);
  }

  // Rate recovery: fast recovery halves the gap to Rt; afterwards Rt itself
  // climbs additively (hyper/active increase collapsed into one stage).
  increase_credit_ += elapsed;
  while (increase_credit_ >= p_.increase_timer) {
    increase_credit_ -= p_.increase_timer;
    if (stage_ >= p_.fast_recovery_stages) {
      rt_ = std::min(rt_ + p_.additive_increase_fraction * line_rate_, line_rate_);
    }
    rc_ = std::min((rc_ + rt_) / 2.0, line_rate_);
    ++stage_;
  }
}

bool Dcqcn::on_cnp(SimTime now) {
  ++cnps_seen_;
  advance(now);
  if (mode_ == CnpMode::SenderGuard && now - last_reaction_ < guard_) {
    return false;
  }
  last_reaction_ = now;
  ++reactions_;
  alpha_ = (1.0 - p_.g) * alpha_ + p_.g;
  rt_ = rc_;
  rc_ = std::max(rc_ * (1.0 - alpha_ / 2.0), p_.min_rate_fraction * line_rate_);
  stage_ = 0;
  // Restart the recovery clock so the first post-cut step is a full period.
  increase_credit_ = 0;
  alpha_credit_ = 0;
  return true;
}

double Dcqcn::rate(SimTime now) {
  advance(now);
  return rc_;
}

}  // namespace peel
