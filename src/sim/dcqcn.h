// DCQCN-lite per-stream rate control (Zhu et al., SIGCOMM'15 shape).
//
// The sender keeps a current rate Rc and target rate Rt.  A congestion
// reaction sets Rt := Rc, cuts Rc by alpha/2, and bumps alpha; between
// reactions alpha decays and Rc recovers toward Rt (fast recovery), then Rt
// additively increases (active increase).  All timer evolution is applied
// lazily at query time — the simulator never schedules per-flow timer events.
//
// Multicast twist (§4 of the paper): one ECN mark fans out into many CNPs.
// CnpMode selects whether CNPs are limited at each receiver (classic DCQCN),
// coalesced by a sender-side guard timer (PEEL), or not at all (ablation).
#pragma once

#include "src/sim/config.h"

namespace peel {

class Dcqcn {
 public:
  Dcqcn() = default;
  Dcqcn(const DcqcnParams& params, double line_rate_bytes_per_ns, CnpMode mode,
        SimTime guard_interval);

  /// Handles a CNP arriving at the sender; returns true if it caused a rate
  /// reaction (false when the guard timer swallowed it).
  bool on_cnp(SimTime now);

  /// Current sending rate in bytes/ns after lazily applying elapsed recovery.
  [[nodiscard]] double rate(SimTime now);

  [[nodiscard]] double line_rate() const noexcept { return line_rate_; }
  [[nodiscard]] std::uint64_t reactions() const noexcept { return reactions_; }
  [[nodiscard]] std::uint64_t cnps_seen() const noexcept { return cnps_seen_; }

 private:
  void advance(SimTime now);

  DcqcnParams p_{};
  double line_rate_ = 1.0;  // bytes/ns
  CnpMode mode_ = CnpMode::ReceiverTimer;
  SimTime guard_ = 50 * kMicrosecond;

  double rc_ = 1.0;
  double rt_ = 1.0;
  double alpha_ = 1.0;
  int stage_ = 0;
  SimTime clock_ = 0;           // last time advance() ran
  SimTime alpha_credit_ = 0;    // time accumulated toward the next alpha decay
  SimTime increase_credit_ = 0; // time accumulated toward the next recovery step
  SimTime last_reaction_ = kMinReaction;
  std::uint64_t reactions_ = 0;
  std::uint64_t cnps_seen_ = 0;

  static constexpr SimTime kMinReaction = -(1LL << 62);
};

}  // namespace peel
