// Discrete-event engine: a time-ordered queue of callbacks.
//
// Events at equal timestamps run in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation run
// deterministic for a fixed seed.
//
// Two scheduling flavors share one heap (and one sequence counter, so their
// relative order is exactly the scheduling order):
//
//   - `at(t, Action)` boxes an arbitrary callback in a std::function. Fine
//     for control-plane events (collective submission, fault injection,
//     recovery passes), which are rare.
//   - `at(t, SimEvent)` carries a type-tagged POD describing one of the
//     data-plane transitions and dispatches it to the bound SimEventSink
//     (the Network). The steady state of a simulation is millions of pump /
//     finish_tx / arrive events; scheduling them as PODs performs no heap
//     allocation and no std::function indirection on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace peel {

/// Type tag of a packed data-plane event (see SimEvent).
enum class SimEventKind : std::uint8_t {
  None = 0,   ///< entry carries a boxed Action instead
  Pump,       ///< inject the next paced segment of stream `a`
  FinishTx,   ///< link `a` finished serializing its head segment (epoch)
  Arrive,     ///< segment (stream b, chunk c, bytes d, ingress e, marked
              ///< flag) reaches the far end of link `a` (epoch)
  CnpRate,    ///< congestion notification reaches stream `a`'s sender
  SampleTick, ///< telemetry time-series sampler
};

/// Packed arguments of one hot data-plane event. Field meaning is
/// kind-specific (documented at SimEventKind); the struct is deliberately a
/// flat POD so scheduling one never touches the heap.
struct SimEvent {
  SimEventKind kind = SimEventKind::None;
  bool flag = false;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
  std::int32_t e = 0;
  std::uint32_t epoch = 0;
};

/// Receiver of packed SimEvents (implemented by the Network). Exactly one
/// sink can be bound to an EventQueue at a time.
class SimEventSink {
 public:
  virtual ~SimEventSink() = default;
  virtual void on_sim_event(const SimEvent& ev) = 0;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(SimTime t, Action fn);

  /// Schedules `fn` `delay` nanoseconds from now.
  void after(SimTime delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Schedules a packed data-plane event at absolute time `t`. A sink must
  /// be bound (bind_sink) before the event fires.
  void at(SimTime t, const SimEvent& ev);

  void after(SimTime delay, const SimEvent& ev) { at(now_ + delay, ev); }

  /// Binds the dispatcher for SimEvents (the Network binds itself on
  /// construction). Pass nullptr to unbind.
  void bind_sink(SimEventSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] SimEventSink* sink() const noexcept { return sink_; }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Runs the earliest event; returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains.
  void run();

  /// Runs events with timestamps <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    SimEvent ev;  ///< dispatched to the sink when kind != None
    Action fn;    ///< run when ev.kind == None
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  void check_not_past(SimTime t) const;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimEventSink* sink_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace peel
