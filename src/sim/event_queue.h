// Discrete-event engine: a time-ordered queue of callbacks.
//
// Events at equal timestamps run in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation run
// deterministic for a fixed seed.
//
// Two scheduling flavors share one sequence counter, so their relative order
// is exactly the scheduling order:
//
//   - `at(t, Action)` boxes an arbitrary callback in a std::function. Fine
//     for control-plane events (collective submission, fault injection,
//     recovery passes), which are rare. Closures live in a small side heap.
//   - `at(t, SimEvent)` carries a type-tagged POD describing one of the
//     data-plane transitions and dispatches it to the bound SimEventSink
//     (the Network). The steady state of a simulation is millions of pump /
//     finish_tx / arrive events; scheduling them as PODs performs no heap
//     allocation and no std::function indirection on the hot path.
//
// POD storage is a two-tier ladder (calendar) queue instead of one global
// binary heap:
//
//   - `cur_` is a min-heap over the active window [now, window_end). Only
//     events this close to the clock pay O(log n) sift costs, and n is the
//     window occupancy, not the total pending count.
//   - `rungs_` is a ring of kBuckets fixed-width buckets covering
//     [window_end, window_end + kBuckets << shift). Scheduling into a bucket
//     is an O(1) push_back; a bucket is heapified only when the clock
//     reaches it (advance()).
//   - `overflow_` holds everything past the ladder, unsorted. When the
//     ladder drains, rebase() re-centers it on the overflow span, widening
//     the bucket stride (shift_) until the span fits — correctness never
//     depends on the bucket width, only the constant factors do.
//
// Every tier orders by the same (t, seq) key, so firing order is identical
// to the single-heap implementation this replaced (the `perf_suite --check`
// byte-identical CSV gate and the thread-invariance tests enforce that).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/units.h"

namespace peel {

/// Type tag of a packed data-plane event (see SimEvent).
enum class SimEventKind : std::uint8_t {
  None = 0,   ///< entry carries a boxed Action instead
  Pump,       ///< inject the next paced segment of stream `a`
  FinishTx,   ///< link `a` finished serializing its head segment (epoch)
  Arrive,     ///< segment (stream b, chunk c, bytes d, ingress e, marked
              ///< flag) reaches the far end of link `a` (epoch)
  CnpRate,    ///< congestion notification reaches stream `a`'s sender
  SampleTick, ///< telemetry time-series sampler
  PfcPause,   ///< cross-domain PFC pause frame reaches link `a`'s sender
              ///< (sharded engine only; epoch guards stale frames)
  PfcResume,  ///< cross-domain PFC resume frame reaches link `a`'s sender
  ReduceEmit, ///< combiner `b` of reduce stream `a` forwards `d` combined
              ///< bytes of chunk `c` upstream (scheduled combine_latency
              ///< after the last expected child byte arrived; marked flag)
};

/// Packed arguments of one hot data-plane event. Field meaning is
/// kind-specific (documented at SimEventKind); the struct is deliberately a
/// flat POD so scheduling one never touches the heap.
struct SimEvent {
  SimEventKind kind = SimEventKind::None;
  bool flag = false;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
  std::int32_t e = 0;
  std::uint32_t epoch = 0;
};

/// Receiver of packed SimEvents (implemented by the Network). Exactly one
/// sink can be bound to an EventQueue at a time.
class SimEventSink {
 public:
  virtual ~SimEventSink() = default;
  virtual void on_sim_event(const SimEvent& ev) = 0;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(SimTime t, Action fn);

  /// Schedules `fn` `delay` nanoseconds from now.
  void after(SimTime delay, Action fn) { at(now_ + delay, std::move(fn)); }

  /// Schedules a packed data-plane event at absolute time `t`. A sink must
  /// be bound (bind_sink) before the event fires.
  void at(SimTime t, const SimEvent& ev) {
    check_not_past(t);
    const PodEntry entry{t, next_seq_++, ev};
    ++pod_count_;
    if (pod_count_ > 1 && t < window_end_) {
      cur_.push_back(entry);
      std::push_heap(cur_.begin(), cur_.end(), PodLater{});
    } else {
      insert_slow(entry);
    }
  }

  void after(SimTime delay, const SimEvent& ev) { at(now_ + delay, ev); }

  /// Binds the dispatcher for SimEvents (the Network binds itself on
  /// construction). Pass nullptr to unbind.
  void bind_sink(SimEventSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] SimEventSink* sink() const noexcept { return sink_; }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept {
    return pod_count_ == 0 && acts_.empty();
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return pod_count_ + acts_.size();
  }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Runs the earliest event; returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains.
  void run();

  /// Runs events with timestamps <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Earliest pending timestamp across every tier; false when empty. (The
  /// sharded engine's window loop takes the min over all domain queues.)
  [[nodiscard]] bool next_event_time(SimTime& t) { return peek_next(t); }

  /// Runs events with timestamps strictly BEFORE `end` (a conservative PDES
  /// window), leaving the clock at the last processed event. Unlike
  /// run_until, the clock is NOT advanced to the horizon — events may still
  /// arrive inside [now, end) from another domain's mailbox drain.
  void run_window(SimTime end);

  /// Moves the clock forward to `t` without running anything. Precondition:
  /// no pending event is earlier than `t` (the caller knows a global bound,
  /// e.g. the sharded engine's window minimum). A no-op when t <= now().
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

 private:
  /// Hot-tier entry: 48 bytes, trivially copyable — a heap sift is a plain
  /// memcpy-class move, unlike the retired Entry that dragged a dead
  /// std::function through every swap.
  struct PodEntry {
    SimTime t;
    std::uint64_t seq;
    SimEvent ev;
  };
  struct PodLater {
    bool operator()(const PodEntry& a, const PodEntry& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  struct ClosureEntry {
    SimTime t;
    std::uint64_t seq;
    Action fn;
  };
  struct ClosureLater {
    bool operator()(const ClosureEntry& a,
                    const ClosureEntry& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  static constexpr int kBuckets = 512;  // power of two (ring indexing)
  static constexpr int kBucketMask = kBuckets - 1;
  /// Default bucket stride: 2^6 ns = 64 ns per bucket, ~33 µs ladder span.
  /// Tuned on the perf_suite reference cell: segment serialization and
  /// propagation delays (0.1–5 µs) land in rungs as O(1) push_backs instead
  /// of active-heap sifts; slower timers (telemetry sampler, throttled
  /// pacing) overflow and are folded back in by the periodic rebase.
  static constexpr int kDefaultShift = 6;

  void check_not_past(SimTime t) const;
  /// Cold insert paths: first pod (ladder reset), rung push, or overflow.
  void insert_slow(const PodEntry& entry);
  /// Refills cur_ from the next non-empty rung (rebasing from overflow when
  /// the ladder is empty). Precondition: cur_ empty, pod_count_ > 0.
  void advance();
  /// Re-centers the ladder on the overflow span. Precondition: cur_ and all
  /// rungs empty, overflow_ non-empty.
  void rebase();
  /// Earliest pending (t, seq); false when empty. May heapify a rung.
  bool peek_next(SimTime& t);

  // POD tiers. Invariants while pod_count_ > 0:
  //   cur_ entries    : t < window_end_
  //   rung entries    : window_end_ <= t < bucket_hi_ << shift_
  //                     in rung (t >> shift_) & kBucketMask
  //   overflow entries: t >= bucket_hi_ << shift_
  // so cur_.front() (after advance()) is the global POD minimum. bucket_hi_
  // is pinned between rebases: the ladder frontier must NOT slide forward as
  // bucket_lo_ advances, or a fresh rung insert could land past an entry
  // already parked in overflow and fire before it.
  std::vector<PodEntry> cur_;
  std::array<std::vector<PodEntry>, kBuckets> rungs_;
  std::vector<PodEntry> overflow_;
  std::size_t pod_count_ = 0;
  std::size_t rung_count_ = 0;
  int shift_ = kDefaultShift;
  std::int64_t bucket_lo_ = 0;   ///< first rung's absolute bucket number
  std::int64_t bucket_hi_ = 0;   ///< ladder frontier (absolute bucket number)
  SimTime window_end_ = 0;       ///< cur_ covers [now, window_end_)

  /// Control-plane closures: rare, so a plain binary heap is fine.
  std::vector<ClosureEntry> acts_;

  SimEventSink* sink_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace peel
