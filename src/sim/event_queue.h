// Discrete-event engine: a time-ordered queue of callbacks.
//
// Events at equal timestamps run in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every simulation run
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace peel {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  void at(SimTime t, Action fn);

  /// Schedules `fn` `delay` nanoseconds from now.
  void after(SimTime delay, Action fn) { at(now_ + delay, std::move(fn)); }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Runs the earliest event; returns false if the queue was empty.
  bool step();

  /// Runs events until the queue drains.
  void run();

  /// Runs events with timestamps <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace peel
