// Abstract data-plane surface shared by the single-queue Network and the
// pod-sharded engine (src/sim/sharded.h).
//
// The collective control plane (CollectiveRunner) and the fault injector
// drive a simulation exclusively through this interface: open multicast
// streams, feed them chunks, react to deliveries, and propagate topology
// failures. Everything else the Network exposes (counters, telemetry,
// queue access) is engine-specific and stays on the concrete types.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/sim/config.h"
#include "src/topology/topology.h"

namespace peel {

using StreamId = std::int32_t;

/// A transfer program: where data enters, how nodes forward it, who consumes.
struct StreamSpec {
  NodeId source = kInvalidNode;
  /// node -> out-links to replicate onto (oriented away from the source).
  std::unordered_map<NodeId, std::vector<LinkId>> forward;
  /// Endpoints whose deliveries count (over-covered hosts are *not* listed:
  /// they receive bytes but discard silently).
  std::vector<NodeId> receivers;
  CnpMode cnp_mode = CnpMode::ReceiverTimer;
  /// Collective id (or any caller cookie) echoed in delivery events.
  std::uint64_t tag = 0;
  /// Non-empty turns the stream into an in-network *reduction*: every listed
  /// endpoint injects its own copy of each chunk, `forward` is oriented
  /// toward `source` (the reduction root — the stream's only receiver), and
  /// each interior node combines child segments before forwarding upstream.
  std::vector<NodeId> contributors;
  /// Sharded-engine replica mask, parallel to `contributors`: 1 = this
  /// engine instance paces that contributor's injector, 0 = a peer domain
  /// does. Empty = all local (the single-queue engine).
  std::vector<std::uint8_t> contributor_local;
};

struct DeliveryEvent {
  StreamId stream = -1;
  std::uint64_t tag = 0;
  NodeId receiver = kInvalidNode;
  int chunk = -1;
};

/// Snapshot of one stream's progress, for stuck-flow diagnostics. Available
/// whether or not telemetry is enabled — it reads the engine's own state.
struct StreamDiagnostic {
  StreamId stream = -1;
  std::uint64_t tag = 0;
  bool closed = false;
  bool pump_blocked = false;    ///< injection stalled on a full source buffer
  bool pump_scheduled = false;  ///< a pump event is in flight
  std::size_t pending_chunks = 0;           ///< chunks not fully injected yet
  Bytes bytes_pending_injection = 0;        ///< of those chunks
  std::size_t incomplete_deliveries = 0;    ///< (receiver, chunk) short of target
};

/// What a collective scheme needs from the simulated fabric. Implemented by
/// Network (single event queue) and ShardedNetwork (one queue per pod
/// domain); the CollectiveRunner and FaultInjector are written against this
/// interface and work unchanged on either engine.
class DataPlane {
 public:
  virtual ~DataPlane() = default;

  /// Invoked whenever a member receiver finishes a chunk.
  virtual void set_delivery_handler(
      std::function<void(const DeliveryEvent&)> handler) = 0;

  virtual StreamId open_stream(StreamSpec spec) = 0;

  /// Queues `bytes` of chunk `chunk_index` for paced injection at the source.
  /// Chunk indices must be non-negative (they key dense per-receiver state).
  virtual void send_chunk(StreamId stream, int chunk_index, Bytes bytes) = 0;

  /// Removes chunks whose injection has not begun; returns their indices
  /// (used by PEEL+programmable cores to migrate traffic mid-collective).
  virtual std::vector<int> cancel_unsent_chunks(StreamId stream) = 0;

  /// Frees a finished stream's bookkeeping (forwarding table, progress).
  virtual void close_stream(StreamId stream) = 0;

  /// Reacts to a mid-run failure of the duplex pair containing `l` (mark the
  /// Topology failed first). Queued and in-flight segments on both
  /// directions are lost; recovery is the collective layer's job.
  virtual void on_duplex_failed(LinkId l) = 0;

  /// Reacts to a mid-run repair of the duplex pair containing `l` (call
  /// Topology::restore_duplex first). New traffic flows immediately;
  /// segments from before the failure stay dead (fail-epoch guard).
  virtual void on_duplex_restored(LinkId l) = 0;

  /// True while `s` is open and its forwarding table replicates onto `l`
  /// (one direction; callers check both directions of a duplex pair).
  [[nodiscard]] virtual bool stream_uses_link(StreamId s,
                                              LinkId l) const = 0;

  /// Progress snapshot for stuck-flow reports (works without telemetry).
  [[nodiscard]] virtual StreamDiagnostic stream_diagnostic(StreamId s) const = 0;

  /// Bytes serialized on one directed link so far.
  [[nodiscard]] virtual Bytes link_bytes(LinkId l) const = 0;
};

}  // namespace peel
