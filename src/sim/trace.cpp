#include "src/sim/trace.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "src/common/csv.h"

namespace peel {

namespace {

constexpr const char* link_kind_name(LinkKind k) noexcept {
  switch (k) {
    case LinkKind::Fabric: return "fabric";
    case LinkKind::HostNic: return "hostnic";
    case LinkKind::NvLink: return "nvlink";
  }
  return "?";
}

double to_us(SimTime t) { return static_cast<double>(t) / 1e3; }

/// Minimal JSON string escape — names we emit contain no exotic characters,
/// but quotes/backslashes/control bytes must never produce invalid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {
    out_ << "{\"traceEvents\":[";
  }

  void meta_process(int pid, const char* name) {
    begin();
    out_ << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << name << "\"}}";
  }

  void duration(int pid, long long tid, const std::string& name, double ts_us,
                double dur_us, const std::string& args_json) {
    begin();
    out_ << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"name\":\"" << json_escape(name) << "\",\"ts\":" << ts_us
         << ",\"dur\":" << dur_us;
    if (!args_json.empty()) out_ << ",\"args\":" << args_json;
    out_ << "}";
  }

  void instant(int pid, long long tid, const std::string& name, double ts_us) {
    begin();
    out_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"name\":\"" << json_escape(name) << "\",\"ts\":" << ts_us
         << "}";
  }

  void finish() { out_ << "]}\n"; }

 private:
  void begin() {
    if (!first_) out_ << ",";
    first_ = false;
  }

  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const TelemetrySummary& summary) {
  EventWriter w(out);
  w.meta_process(1, "collectives");
  w.meta_process(2, "pfc");
  w.meta_process(3, "cnp");

  for (const FlowSpan& f : summary.flows) {
    char args[96];
    std::snprintf(args, sizeof args, "{\"finished\":%s}",
                  f.finished ? "true" : "false");
    w.duration(1, static_cast<long long>(f.id), f.name, to_us(f.begin),
               to_us(f.end - f.begin), args);
  }
  for (const PauseSpan& p : summary.pauses) {
    w.duration(2, p.link, "pause", to_us(p.begin), to_us(p.end - p.begin), "");
  }
  for (const CnpEvent& c : summary.cnps) {
    char name[48];
    std::snprintf(name, sizeof name, "cnp rx=%d", c.receiver);
    w.instant(3, c.stream, name, to_us(c.t));
  }
  w.finish();
}

void write_chrome_trace(const std::string& path,
                        const TelemetrySummary& summary) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create trace file: " + path);
  write_chrome_trace(out, summary);
}

void write_link_telemetry_csv(const std::string& path,
                              const TelemetrySummary& summary) {
  CsvWriter csv(path, {"link", "src", "dst", "kind", "bytes", "segments",
                       "ecn_marks", "pfc_pauses", "pfc_pause_ns",
                       "queue_peak_bytes", "mean_queue_bytes"});
  for (const LinkTelemetry& t : summary.links) {
    char mean[32];
    std::snprintf(mean, sizeof mean, "%.9g", t.mean_queue_bytes);
    csv.row({std::to_string(t.link), std::to_string(t.src),
             std::to_string(t.dst), link_kind_name(t.kind),
             std::to_string(t.bytes), std::to_string(t.segments),
             std::to_string(t.ecn_marks), std::to_string(t.pfc_pauses),
             std::to_string(t.pfc_pause_time), std::to_string(t.queue_peak),
             mean});
  }
}

void write_queue_samples_csv(const std::string& path,
                             const TelemetrySummary& summary) {
  CsvWriter csv(path, {"time_ns", "total_queued_bytes", "max_link_queued_bytes",
                       "queued_links", "paused_links"});
  for (const QueueSample& q : summary.samples) {
    csv.row({std::to_string(q.t), std::to_string(q.total_queued),
             std::to_string(q.max_link_queued), std::to_string(q.queued_links),
             std::to_string(q.paused_links)});
  }
}

}  // namespace peel
