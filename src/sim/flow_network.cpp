#include "src/sim/flow_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace peel {

namespace {

/// Rate floor for a flow whose compiled link set is empty (a degenerate
/// single-node spec): chunks complete in ~1 ns instead of dividing by zero.
constexpr double kUnboundedRate = 1e6;  // bytes per ns

}  // namespace

FlowNetwork::FlowNetwork(const Topology& topo, const SimConfig& config,
                         EventQueue& queue)
    : topo_(&topo), config_(config), queue_(&queue) {
  config_.validate();
  links_.resize(topo.link_count());
  if (config_.telemetry.enabled) {
    telem_ = std::make_unique<Telemetry>(config_.telemetry, topo);
  }
}

FlowNetwork::~FlowNetwork() = default;

Bytes FlowNetwork::last_segment(Bytes bytes) const noexcept {
  const Bytes rem = bytes % config_.segment_bytes;
  return rem > 0 ? rem : std::min(bytes, config_.segment_bytes);
}

// ---------------------------------------------------------------------------
// Stream lifecycle

StreamId FlowNetwork::open_stream(StreamSpec spec) {
  const auto id = static_cast<StreamId>(flows_.size());
  flows_.emplace_back();
  FlowState& f = flows_.back();
  f.reduce = !spec.contributors.empty();

  // Compile the directed link set. The forward map is the multicast tree
  // oriented away from the source (toward it, semantically, for a reduce
  // stream); a reduce flow additionally occupies the reverse of every
  // forward link — the contributor up-paths that mirror the down-tree.
  const auto node_total = static_cast<std::size_t>(topo_->node_count());
  std::vector<LinkId> parent_link(node_total, kInvalidLink);
  for (const auto& [node, outs] : spec.forward) {
    if (node < 0 || static_cast<std::size_t>(node) >= node_total) {
      throw std::invalid_argument("stream spec names an unknown node");
    }
    for (LinkId l : outs) {
      if (l < 0 || static_cast<std::size_t>(l) >= links_.size()) {
        throw std::invalid_argument("stream spec names an unknown link");
      }
      f.fwd_links.push_back(l);
      const NodeId child = topo_->link(l).dst;
      if (parent_link[static_cast<std::size_t>(child)] != kInvalidLink &&
          f.reduce) {
        throw std::invalid_argument(
            "reduce stream forward map is not a tree (node has two parents)");
      }
      if (parent_link[static_cast<std::size_t>(child)] == kInvalidLink) {
        parent_link[static_cast<std::size_t>(child)] = l;
      }
    }
  }
  std::sort(f.fwd_links.begin(), f.fwd_links.end());
  f.fwd_links.erase(std::unique(f.fwd_links.begin(), f.fwd_links.end()),
                    f.fwd_links.end());
  f.links = f.fwd_links;
  if (f.reduce) {
    f.up_links.reserve(f.fwd_links.size());
    for (LinkId l : f.fwd_links) f.up_links.push_back(topo_->reverse_of(l));
    std::sort(f.up_links.begin(), f.up_links.end());
    f.links.insert(f.links.end(), f.up_links.begin(), f.up_links.end());
    std::sort(f.links.begin(), f.links.end());
    f.links.erase(std::unique(f.links.begin(), f.links.end()), f.links.end());
    for (const auto& [node, outs] : spec.forward) {
      if (!outs.empty()) f.combiner_nodes.push_back(node);
    }
    std::sort(f.combiner_nodes.begin(), f.combiner_nodes.end());
  }
  f.link_live.assign(f.links.size(), 1);

  // Per-receiver path timing: walk the parent chain back to the source and
  // accumulate propagation plus per-hop line-rate inverse (the cut-through
  // delay of the chunk's final segment).
  const auto walk = [&](NodeId from, SimTime& prop, double& inv, int& hops) {
    prop = 0;
    inv = 0.0;
    hops = 0;
    NodeId at = from;
    std::size_t guard = 0;
    while (at != spec.source) {
      if (at < 0 || ++guard > node_total) {
        throw std::invalid_argument(
            "stream spec has no forward path between source and endpoint");
      }
      const LinkId l = parent_link[static_cast<std::size_t>(at)];
      if (l == kInvalidLink) {
        throw std::invalid_argument(
            "stream spec has no forward path between source and endpoint");
      }
      const Link& lk = topo_->link(l);
      prop += lk.propagation;
      inv += 1.0 / lk.rate.bytes_per_ns();
      ++hops;
      at = lk.src;
    }
  };
  f.recvs.reserve(spec.receivers.size());
  for (NodeId r : spec.receivers) {
    const bool dup =
        std::any_of(f.recvs.begin(), f.recvs.end(),
                    [r](const RecvInfo& ri) { return ri.node == r; });
    if (dup) continue;  // first entry wins, as in the packet engine
    RecvInfo ri;
    ri.node = r;
    int hops = 0;
    walk(r, ri.prop_sum, ri.inv_rate_sum, hops);
    f.recvs.push_back(ri);
  }
  if (f.reduce) {
    // The pipeline's tail byte must climb from the slowest contributor to
    // the pivot (one combine latency per aggregation hop) before the down
    // multicast can retire it.
    for (NodeId c : spec.contributors) {
      SimTime prop = 0;
      double inv = 0.0;
      int hops = 0;
      walk(c, prop, inv, hops);
      const SimTime up =
          prop +
          static_cast<SimTime>(std::ceil(
              static_cast<double>(last_segment(config_.segment_bytes)) * inv)) +
          config_.reduce_combine_latency * hops;
      f.up_offset = std::max(f.up_offset, up);
    }
  }

  if (telem_) {
    std::vector<NodeId> recvs;
    recvs.reserve(f.recvs.size());
    for (const RecvInfo& ri : f.recvs) recvs.push_back(ri.node);
    telem_->on_stream_open(id, spec.tag, recvs);
    if (f.reduce) telem_->on_reduce_open(id, spec.contributors);
  }

  f.spec = std::move(spec);
  if (topo_->failed_link_count() > 0) refresh_live_set(id);
  return id;
}

void FlowNetwork::send_chunk(StreamId stream, int chunk_index, Bytes bytes) {
  FlowState& f = flow(stream);
  if (f.closed) throw std::logic_error("send_chunk on closed stream");
  if (bytes <= 0) throw std::invalid_argument("chunk bytes must be positive");
  if (chunk_index < 0) {
    throw std::invalid_argument("chunk index must be non-negative");
  }
  if (telem_ && f.reduce) {
    telem_->on_reduce_target(stream, chunk_index, bytes);
  }
  f.pending.push_back(PendingChunk{chunk_index, bytes});
  if (!f.active && !f.frozen) activate(stream);
}

std::vector<int> FlowNetwork::cancel_unsent_chunks(StreamId stream) {
  FlowState& f = flow(stream);
  std::vector<int> cancelled;
  if (f.closed) return cancelled;
  settle(stream, queue_->now());
  // Keep the chunk currently mid-transfer (if any); drop the rest.
  std::size_t keep = f.pending_head;
  if (keep < f.pending.size() && f.head_done > 0.0) ++keep;
  for (std::size_t i = keep; i < f.pending.size(); ++i) {
    cancelled.push_back(f.pending[i].chunk);
  }
  f.pending.resize(keep);
  if (f.active && f.pending_head == f.pending.size()) deactivate(stream);
  return cancelled;
}

void FlowNetwork::close_stream(StreamId stream) {
  FlowState& f = flow(stream);
  if (f.closed) return;
  const SimTime now = queue_->now();
  settle(stream, now);
  if (f.active && f.head_done > 0.0) {
    // The head chunk's partial fluid dies with the stream: it was never
    // serialized (lump-sum accounting fires at completion), so take it back
    // out of the rate integrals to keep them equal to the audited bytes.
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      if (f.link_live[i]) {
        links_[static_cast<std::size_t>(f.links[i])].util_integral -=
            f.head_done;
      }
    }
  }
  const bool complete = f.pending_head == f.pending.size() &&
                        !f.short_delivery && !f.frozen;
  if (telem_) telem_->on_stream_close(stream, complete);
  if (f.active) {
    detach(stream);
    f.active = false;
    f.rate = 0.0;
    ++f.gen;
    f.completion_scheduled = false;
    f.closed = true;
    recompute_component(stream);
  }
  f.closed = true;
  auto release = [](auto& c) { std::decay_t<decltype(c)>{}.swap(c); };
  release(f.spec.forward);
  release(f.spec.receivers);
  release(f.spec.contributors);
  release(f.spec.contributor_local);
  release(f.links);
  release(f.link_live);
  release(f.fwd_links);
  release(f.recvs);
  release(f.up_links);
  release(f.combiner_nodes);
  release(f.pending);
  f.pending_head = 0;
  f.head_done = 0.0;
}

// ---------------------------------------------------------------------------
// Progress accrual and completion

void FlowNetwork::settle(StreamId s, SimTime now) {
  FlowState& f = flow(s);
  const SimTime dt = now - f.last_settle;
  f.last_settle = now;
  if (!f.active || dt <= 0 || f.rate <= 0.0) return;
  const PendingChunk& head = f.pending[f.pending_head];
  const double remaining = static_cast<double>(head.bytes) - f.head_done;
  const double progressed =
      std::min(f.rate * static_cast<double>(dt), remaining);
  if (progressed <= 0.0) return;
  f.head_done += progressed;
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    if (f.link_live[i]) {
      links_[static_cast<std::size_t>(f.links[i])].util_integral += progressed;
    }
  }
}

void FlowNetwork::attach(StreamId s) {
  FlowState& f = flow(s);
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    if (f.link_live[i]) {
      links_[static_cast<std::size_t>(f.links[i])].active.push_back(s);
    }
  }
}

void FlowNetwork::detach(StreamId s) {
  FlowState& f = flow(s);
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    if (!f.link_live[i]) continue;
    auto& v = links_[static_cast<std::size_t>(f.links[i])].active;
    v.erase(std::remove(v.begin(), v.end(), s), v.end());
  }
}

void FlowNetwork::activate(StreamId s) {
  FlowState& f = flow(s);
  f.active = true;
  f.last_settle = queue_->now();
  f.head_done = 0.0;
  attach(s);
  recompute_component(s);
}

void FlowNetwork::deactivate(StreamId s) {
  FlowState& f = flow(s);
  settle(s, queue_->now());
  detach(s);
  f.active = false;
  f.rate = 0.0;
  ++f.gen;
  f.completion_scheduled = false;
  recompute_component(s);
}

double FlowNetwork::utilization_cap(const FlowState& f) const {
  switch (f.spec.cnp_mode) {
    case CnpMode::SenderGuard:
      return config_.flow.guard_utilization;
    case CnpMode::ReceiverTimer:
      return f.recvs.size() > 1
                 ? config_.flow.receiver_timer_multicast_utilization
                 : config_.flow.receiver_timer_unicast_utilization;
    case CnpMode::Unthrottled:
      return config_.flow.unthrottled_utilization;
  }
  return 1.0;
}

double FlowNetwork::line_rate_floor(const FlowState& f) const {
  double floor = kUnboundedRate;
  for (LinkId l : f.links) {
    floor = std::min(floor, topo_->link(l).rate.bytes_per_ns());
  }
  return floor;
}

void FlowNetwork::recompute_component(StreamId seed) {
  const SimTime now = queue_->now();
  ++rate_recomputes_;

  // Connected component: streams transitively sharing a live link with the
  // seed. The seed itself is included whether or not it is still active (a
  // departure perturbs exactly the flows it used to share links with).
  if (visit_stamp_.size() < flows_.size()) {
    visit_stamp_.resize(flows_.size(), 0);
  }
  const std::uint32_t epoch = ++visit_epoch_;
  std::vector<StreamId> comp;
  comp.push_back(seed);
  visit_stamp_[static_cast<std::size_t>(seed)] = epoch;
  for (std::size_t i = 0; i < comp.size(); ++i) {
    const FlowState& f = flow(comp[i]);
    if (f.closed) continue;
    for (std::size_t j = 0; j < f.links.size(); ++j) {
      if (!f.link_live[j]) continue;
      for (StreamId t :
           links_[static_cast<std::size_t>(f.links[j])].active) {
        auto& stamp = visit_stamp_[static_cast<std::size_t>(t)];
        if (stamp == epoch) continue;
        stamp = epoch;
        comp.push_back(t);
      }
    }
  }
  std::sort(comp.begin(), comp.end());

  std::vector<StreamId> act;
  act.reserve(comp.size());
  for (StreamId s : comp) {
    if (flow(s).active) act.push_back(s);
  }

  // Progressive-filling max-min over the component's live links. Slots are
  // assigned in ascending link id order, and ties in the fill level resolve
  // to the lowest link id, so the allocation is a pure function of the
  // component state.
  std::vector<LinkId> slot_link;
  std::vector<double> slot_cap;
  std::vector<int> slot_count;
  std::vector<std::vector<std::size_t>> flow_slots(act.size());
  {
    std::vector<std::int32_t> slot_of(links_.size(), -1);
    std::vector<LinkId> used;
    for (StreamId s : act) {
      const FlowState& f = flow(s);
      for (std::size_t j = 0; j < f.links.size(); ++j) {
        if (f.link_live[j] && slot_of[static_cast<std::size_t>(f.links[j])] < 0) {
          slot_of[static_cast<std::size_t>(f.links[j])] = 0;
          used.push_back(f.links[j]);
        }
      }
    }
    std::sort(used.begin(), used.end());
    slot_link = used;
    slot_cap.resize(used.size());
    slot_count.assign(used.size(), 0);
    for (std::size_t i = 0; i < used.size(); ++i) {
      slot_of[static_cast<std::size_t>(used[i])] =
          static_cast<std::int32_t>(i);
      slot_cap[i] = topo_->link(used[i]).rate.bytes_per_ns();
    }
    for (std::size_t fi = 0; fi < act.size(); ++fi) {
      const FlowState& f = flow(act[fi]);
      for (std::size_t j = 0; j < f.links.size(); ++j) {
        if (!f.link_live[j]) continue;
        const auto slot = static_cast<std::size_t>(
            slot_of[static_cast<std::size_t>(f.links[j])]);
        flow_slots[fi].push_back(slot);
        ++slot_count[slot];
      }
    }
  }
  const std::vector<int> initial_count = slot_count;

  std::vector<double> fair(act.size(), 0.0);
  std::vector<char> assigned(act.size(), 0);
  for (;;) {
    std::size_t best = slot_link.size();
    double best_fill = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < slot_link.size(); ++i) {
      if (slot_count[i] <= 0) continue;
      const double fill =
          std::max(slot_cap[i], 0.0) / static_cast<double>(slot_count[i]);
      if (fill < best_fill) {
        best_fill = fill;
        best = i;
      }
    }
    if (best == slot_link.size()) break;
    for (std::size_t fi = 0; fi < act.size(); ++fi) {
      if (assigned[fi]) continue;
      const auto& slots = flow_slots[fi];
      if (std::find(slots.begin(), slots.end(), best) == slots.end()) continue;
      assigned[fi] = 1;
      fair[fi] = best_fill;
      for (std::size_t slot : slots) {
        slot_cap[slot] -= best_fill;
        --slot_count[slot];
      }
    }
  }

  for (std::size_t fi = 0; fi < act.size(); ++fi) {
    FlowState& f = flow(act[fi]);
    double rate;
    if (flow_slots[fi].empty()) {
      // Every link this flow occupies is dead: the source keeps pacing into
      // the outage at line rate, exactly as the packet engine's pump keeps
      // injecting into a dead port (the bytes are recorded as losses when
      // each chunk retires).
      rate = line_rate_floor(f);
    } else {
      rate = fair[fi];
      bool contended = false;
      for (std::size_t slot : flow_slots[fi]) {
        if (initial_count[slot] >= 2) {
          contended = true;
          break;
        }
      }
      if (contended && config_.congestion_control) {
        rate *= utilization_cap(f);
      }
    }
    if (rate != f.rate || !f.completion_scheduled) {
      settle(act[fi], now);
      f.rate = rate;
      schedule_completion(act[fi]);
    }
  }
}

void FlowNetwork::schedule_completion(StreamId s) {
  FlowState& f = flow(s);
  ++f.gen;
  if (f.rate <= 0.0 || f.pending_head >= f.pending.size()) {
    f.completion_scheduled = false;
    return;
  }
  const PendingChunk& head = f.pending[f.pending_head];
  const double remaining = static_cast<double>(head.bytes) - f.head_done;
  const auto dt = static_cast<SimTime>(std::ceil(remaining / f.rate));
  const SimTime at = queue_->now() + std::max<SimTime>(dt, 0);
  f.completion_scheduled = true;
  queue_->at(at, [this, s, gen = f.gen] {
    FlowState& g = flow(s);
    if (g.closed || g.gen != gen) return;  // stale (rate changed since)
    settle(s, queue_->now());
    complete_head_chunk(s);
  });
}

void FlowNetwork::complete_head_chunk(StreamId s) {
  FlowState& f = flow(s);
  const SimTime now = queue_->now();
  const PendingChunk head = f.pending[f.pending_head];
  f.head_done = 0.0;
  ++f.pending_head;
  if (f.pending_head == f.pending.size()) {
    f.pending.clear();
    f.pending_head = 0;
  }

  // The audited lump: every integer record for this chunk lands here, at one
  // instant, so hop conservation (enqueued == serialized) holds by
  // construction and a chunk that never completes leaves no trace.
  const std::uint64_t nseg = chunk_segments(head.bytes);
  if (f.reduce && telem_) {
    for (NodeId c : f.spec.contributors) {
      telem_->on_inject(s, head.chunk, head.bytes);
      telem_->on_reduce_contribute(s, c, head.chunk, head.bytes);
    }
  } else if (telem_) {
    telem_->on_inject(s, head.chunk, head.bytes);
  }
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    const LinkId l = f.links[i];
    if (f.link_live[i]) {
      LinkAccum& a = links_[static_cast<std::size_t>(l)];
      a.serialized += head.bytes;
      a.segments += nseg;
      total_bytes_ += head.bytes;
      segments_serialized_ += nseg;
      if (telem_) {
        telem_->on_enqueue(l, s, head.bytes, 0, now);
        telem_->on_serialized(l, s, head.bytes, 0, now);
      }
    } else {
      // The replication onto the severed subtree died on the wire.
      lost_segments_ += nseg;
      if (telem_) telem_->on_wire_drop(s, head.bytes);
    }
  }
  if (f.reduce && telem_) {
    for (LinkId l : f.up_links) {
      telem_->on_reduce_absorb(s, l, head.chunk, head.bytes);
    }
    for (NodeId n : f.combiner_nodes) {
      telem_->on_reduce_emit(s, n, head.chunk, head.bytes);
    }
  }

  const Bytes tail = last_segment(head.bytes);
  for (const RecvInfo& ri : f.recvs) {
    if (!ri.live) {
      f.short_delivery = true;
      continue;
    }
    if (telem_) telem_->on_deliver(s, ri.node, head.chunk, head.bytes);
    const SimTime offset =
        f.up_offset + ri.prop_sum +
        static_cast<SimTime>(
            std::ceil(static_cast<double>(tail) * ri.inv_rate_sum));
    DeliveryEvent ev;
    ev.stream = s;
    ev.tag = f.spec.tag;
    ev.receiver = ri.node;
    ev.chunk = head.chunk;
    queue_->at(now + offset, [this, ev] {
      if (on_delivery_) on_delivery_(ev);
    });
  }

  if (f.pending_head == f.pending.size()) {
    deactivate(s);
  } else {
    schedule_completion(s);
  }
}

// ---------------------------------------------------------------------------
// Faults

void FlowNetwork::refresh_live_set(StreamId s) {
  FlowState& f = flow(s);
  if (f.closed) return;
  settle(s, queue_->now());

  // Source-reachable subset of the compiled links over the current topology.
  if (visit_stamp_.size() < static_cast<std::size_t>(topo_->node_count())) {
    visit_stamp_.resize(static_cast<std::size_t>(topo_->node_count()), 0);
  }
  const std::uint32_t epoch = ++visit_epoch_;
  std::vector<NodeId> frontier;
  frontier.push_back(f.spec.source);
  visit_stamp_[static_cast<std::size_t>(f.spec.source)] = epoch;
  // The compiled set is small; scan it per frontier node (flat and cheap).
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const NodeId at = frontier[i];
    for (LinkId l : f.fwd_links) {
      const Link& lk = topo_->link(l);
      if (lk.src != at || lk.failed) continue;
      auto& stamp = visit_stamp_[static_cast<std::size_t>(lk.dst)];
      if (stamp == epoch) continue;
      stamp = epoch;
      frontier.push_back(lk.dst);
    }
  }
  const auto reached = [&](NodeId n) {
    return visit_stamp_[static_cast<std::size_t>(n)] == epoch;
  };

  bool lost_partial = false;
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    const Link& lk = topo_->link(f.links[i]);
    // A forward link is live when its upstream end is reachable and the wire
    // itself is up; an up-path (reduce mirror) link hangs off the same
    // duplex pair, so the same test applies to its reverse orientation.
    const NodeId upstream_end =
        f.reduce && !std::binary_search(f.fwd_links.begin(), f.fwd_links.end(),
                                        f.links[i])
            ? lk.dst
            : lk.src;
    const char live = static_cast<char>(!lk.failed && reached(upstream_end));
    if (live == f.link_live[i]) continue;
    LinkAccum& a = links_[static_cast<std::size_t>(f.links[i])];
    if (f.active) {
      if (live) {
        a.active.push_back(s);
        // Catch the link's integral up with the head chunk's progress so the
        // completion lump matches it (the chunk retires over the full set).
        a.util_integral += f.head_done;
      } else {
        a.active.erase(std::remove(a.active.begin(), a.active.end(), s),
                       a.active.end());
        // The partial fluid on the dead wire is gone.
        a.util_integral -= f.head_done;
        lost_partial = true;
      }
    }
    f.link_live[i] = live;
  }
  for (RecvInfo& ri : f.recvs) ri.live = reached(ri.node);
  if (lost_partial && f.head_done > 0.0) {
    lost_segments_ += chunk_segments(
        std::max<Bytes>(static_cast<Bytes>(f.head_done), 1));
    if (telem_) telem_->on_wire_drop(s, static_cast<Bytes>(f.head_done));
  }
}

void FlowNetwork::on_duplex_failed(LinkId l) {
  const LinkId a = l;
  const LinkId b = topo_->reverse_of(l);
  for (StreamId s = 0; static_cast<StreamId>(flows_.size()) > s; ++s) {
    FlowState& f = flow(s);
    if (f.closed) continue;
    const bool uses =
        std::binary_search(f.links.begin(), f.links.end(), a) ||
        std::binary_search(f.links.begin(), f.links.end(), b);
    if (!uses) continue;
    if (f.reduce) {
      if (f.frozen) continue;
      // A reduce pipeline cannot run truncated (the pivot would combine
      // short); freeze it and let the recovery pass supersede the stream,
      // exactly as the packet engine's combiners stall on the missing child.
      settle(s, queue_->now());
      if (f.active) {
        if (f.head_done > 0.0) {
          for (std::size_t i = 0; i < f.links.size(); ++i) {
            if (f.link_live[i]) {
              links_[static_cast<std::size_t>(f.links[i])].util_integral -=
                  f.head_done;
            }
          }
          lost_segments_ += chunk_segments(
              std::max<Bytes>(static_cast<Bytes>(f.head_done), 1));
          if (telem_) {
            telem_->on_wire_drop(s, static_cast<Bytes>(f.head_done));
          }
          f.head_done = 0.0;
        }
        detach(s);
        f.active = false;
        f.rate = 0.0;
        ++f.gen;
        f.completion_scheduled = false;
        f.frozen = true;
        recompute_component(s);
      } else {
        f.frozen = true;
      }
      continue;
    }
    refresh_live_set(s);
    recompute_component(s);
  }
}

void FlowNetwork::on_duplex_restored(LinkId l) {
  const LinkId a = l;
  const LinkId b = topo_->reverse_of(l);
  for (StreamId s = 0; static_cast<StreamId>(flows_.size()) > s; ++s) {
    FlowState& f = flow(s);
    if (f.closed || f.reduce) continue;  // frozen reduce awaits supersede
    const bool uses =
        std::binary_search(f.links.begin(), f.links.end(), a) ||
        std::binary_search(f.links.begin(), f.links.end(), b);
    if (!uses) continue;
    refresh_live_set(s);
    recompute_component(s);
  }
}

// ---------------------------------------------------------------------------
// Introspection

bool FlowNetwork::stream_uses_link(StreamId s, LinkId l) const {
  const FlowState& f = flow(s);
  if (f.closed) return false;
  return std::binary_search(f.fwd_links.begin(), f.fwd_links.end(), l);
}

StreamDiagnostic FlowNetwork::stream_diagnostic(StreamId s) const {
  const FlowState& f = flow(s);
  StreamDiagnostic d;
  d.stream = s;
  d.tag = f.spec.tag;
  d.closed = f.closed;
  d.pump_blocked = f.frozen;
  d.pump_scheduled = f.completion_scheduled;
  d.pending_chunks = f.pending.size() - f.pending_head;
  for (std::size_t i = f.pending_head; i < f.pending.size(); ++i) {
    d.bytes_pending_injection += f.pending[i].bytes;
  }
  d.bytes_pending_injection -= static_cast<Bytes>(f.head_done);
  d.incomplete_deliveries =
      d.pending_chunks * f.recvs.size() + (f.short_delivery ? 1 : 0);
  return d;
}

double FlowNetwork::link_rate(LinkId l) const {
  double sum = 0.0;
  for (StreamId s : links_[static_cast<std::size_t>(l)].active) {
    sum += flow(s).rate;
  }
  return sum;
}

}  // namespace peel
