#include "src/baselines/bandwidth.h"

#include <algorithm>
#include <numeric>

namespace peel {

int LinkLoad::total() const {
  return std::accumulate(per_link.begin(), per_link.end(), 0);
}

int LinkLoad::fabric_total(const Topology& topo) const {
  int sum = 0;
  for (std::size_t l = 0; l < per_link.size(); ++l) {
    const Link& lk = topo.link(static_cast<LinkId>(l));
    if (is_switch(topo.kind(lk.src)) || is_switch(topo.kind(lk.dst))) {
      if (lk.kind != LinkKind::NvLink) sum += per_link[l];
    }
  }
  return sum;
}

int LinkLoad::core_total(const Topology& topo) const {
  int sum = 0;
  for (std::size_t l = 0; l < per_link.size(); ++l) {
    const Link& lk = topo.link(static_cast<LinkId>(l));
    if (is_switch(topo.kind(lk.src)) && is_switch(topo.kind(lk.dst))) {
      sum += per_link[l];
    }
  }
  return sum;
}

int LinkLoad::max_on_any_link() const {
  return per_link.empty() ? 0 : *std::max_element(per_link.begin(), per_link.end());
}

std::vector<std::pair<NodeId, NodeId>> ring_pairs(NodeId source,
                                                  std::span<const NodeId> destinations) {
  std::vector<NodeId> order{source};
  order.insert(order.end(), destinations.begin(), destinations.end());
  std::sort(order.begin() + 1, order.end());
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(order.size());
  // The classic ring collective runs on a *closed* logical ring — Figure 1a
  // charges the wrap-around hop too, which is what makes rings traverse core
  // links twice even under locality-sorted placement.
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    pairs.emplace_back(order[i], order[i + 1]);
  }
  if (order.size() > 2) pairs.emplace_back(order.back(), order.front());
  return pairs;
}

std::vector<std::pair<NodeId, NodeId>> binary_tree_pairs(
    NodeId source, std::span<const NodeId> destinations) {
  std::vector<NodeId> order{source};
  order.insert(order.end(), destinations.begin(), destinations.end());
  std::sort(order.begin() + 1, order.end());
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (std::size_t r = 1; r < order.size(); ++r) {
    pairs.emplace_back(order[(r - 1) / 2], order[r]);
  }
  return pairs;
}

LinkLoad unicast_load(const Topology& topo, Router& router,
                      std::span<const std::pair<NodeId, NodeId>> pairs,
                      std::uint64_t salt) {
  LinkLoad load;
  load.per_link.assign(topo.link_count(), 0);
  std::uint64_t flow = 0;
  for (const auto& [src, dst] : pairs) {
    const Route route = router.path(
        src, dst,
        ecmp_hash(static_cast<std::uint64_t>(src) << 20 | static_cast<std::uint64_t>(dst),
                  flow++, salt));
    for (LinkId l : route.links) ++load.per_link[static_cast<std::size_t>(l)];
  }
  return load;
}

LinkLoad tree_load(const Topology& topo, const MulticastTree& tree) {
  LinkLoad load;
  load.per_link.assign(topo.link_count(), 0);
  for (LinkId l : tree.links()) ++load.per_link[static_cast<std::size_t>(l)];
  return load;
}

}  // namespace peel
