// Link-traversal accounting for Figure 1: how many times each physical link
// carries the message under unicast Ring / Binary-Tree schedules versus an
// in-network multicast tree.  Logical topologies schedule unicasts; they do
// not reduce total bytes — this module quantifies exactly that.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "src/routing/router.h"
#include "src/steiner/multicast_tree.h"
#include "src/topology/topology.h"

namespace peel {

/// Per-link traversal counts (indexed by LinkId).
struct LinkLoad {
  std::vector<int> per_link;

  [[nodiscard]] int total() const;
  /// Traversals on switch-to-switch links only (the "core links" of Fig. 1).
  [[nodiscard]] int fabric_total(const Topology& topo) const;
  /// Traversals on links between switch tiers Core<->Tor / Core<->Agg /
  /// Agg<->Tor excluding host access (the congested spine of the fabric).
  [[nodiscard]] int core_total(const Topology& topo) const;
  [[nodiscard]] int max_on_any_link() const;
};

/// Unicast (src, dst) pairs of a locality-ordered ring rooted at `source`.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> ring_pairs(
    NodeId source, std::span<const NodeId> destinations);

/// Unicast pairs of a binary tree rooted at `source` (rank r -> 2r+1, 2r+2).
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> binary_tree_pairs(
    NodeId source, std::span<const NodeId> destinations);

/// Routes every pair with ECMP and accumulates per-link traversals.
[[nodiscard]] LinkLoad unicast_load(const Topology& topo, Router& router,
                                    std::span<const std::pair<NodeId, NodeId>> pairs,
                                    std::uint64_t salt = 0);

/// A multicast tree traverses each tree link exactly once.
[[nodiscard]] LinkLoad tree_load(const Topology& topo, const MulticastTree& tree);

}  // namespace peel
