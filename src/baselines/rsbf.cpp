#include "src/baselines/rsbf.h"

#include <cmath>
#include <stdexcept>

namespace peel {

std::size_t rsbf_tree_elements(int k) {
  if (k < 4 || k % 2 != 0) throw std::invalid_argument("fat-tree k must be even >= 4");
  const std::size_t uk = static_cast<std::size_t>(k);
  const std::size_t hosts = uk * uk * uk / 4;        // host access links
  const std::size_t agg_to_tor = uk * uk / 2;        // k pods x k/2 ToRs
  const std::size_t core_to_agg = uk - 1;            // one agg per pod
  const std::size_t up_path = 3;                     // host->ToR->agg->core
  return hosts + agg_to_tor + core_to_agg + up_path;
}

double bloom_filter_bits(std::size_t n, double fpr) {
  if (fpr <= 0.0 || fpr >= 1.0) throw std::invalid_argument("fpr must be in (0,1)");
  constexpr double ln2_sq = 0.4804530139182014;  // ln(2)^2
  return static_cast<double>(n) * std::log(1.0 / fpr) / ln2_sq;
}

double rsbf_header_bytes(int k, double fpr) {
  return std::ceil(bloom_filter_bits(rsbf_tree_elements(k), fpr) / 8.0);
}

double rsbf_bandwidth_overhead(int k, double fpr, Bytes mtu) {
  return rsbf_header_bytes(k, fpr) / static_cast<double>(mtu);
}

double rsbf_expected_redundant_links(std::size_t probes, double fpr) {
  return static_cast<double>(probes) * fpr;
}

}  // namespace peel
