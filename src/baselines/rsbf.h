// Analytic model of RSBF-style Bloom-filter multicast headers (§3.1,
// Figure 3).
//
// Bloom-filter schemes (RSBF, LIPSIN, Elmo, Yeti) push the multicast tree
// into the packet: the header encodes every (switch, out-port) pair of the
// tree in a Bloom filter sized for a target false-positive ratio.  The filter
// needs n · ln(1/f)/ln²2 bits for n elements, and a full-fabric broadcast
// tree in a k-ary fat-tree has Θ(k³) links — so the header outgrows a 1500 B
// MTU once k exceeds 32 even at a generous 20% FPR, which is the paper's
// Figure 3.
#pragma once

#include <cstddef>

#include "src/common/units.h"

namespace peel {

/// Links (Bloom-filter elements) in a full-fabric broadcast tree of a k-ary
/// fat-tree with the canonical k/2 hosts per ToR: host links + ToR fan-out +
/// aggregation fan-out + core fan-out + the source's up-path.
[[nodiscard]] std::size_t rsbf_tree_elements(int k);

/// Optimal Bloom-filter size in bits for n elements at false-positive rate f.
[[nodiscard]] double bloom_filter_bits(std::size_t n, double fpr);

/// RSBF per-packet header bytes for a k-ary fat-tree at the given FPR.
[[nodiscard]] double rsbf_header_bytes(int k, double fpr);

/// Header bytes as a fraction of an MTU-sized payload — >1.0 means the
/// "header" alone no longer fits a packet (Figure 3's dashed ceiling).
[[nodiscard]] double rsbf_bandwidth_overhead(int k, double fpr, Bytes mtu = 1500);

/// Expected number of extra (false-positive) link deliveries when a packet's
/// filter is probed on `probes` non-tree ports at rate f.
[[nodiscard]] double rsbf_expected_redundant_links(std::size_t probes, double fpr);

}  // namespace peel
