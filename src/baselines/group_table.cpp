#include "src/baselines/group_table.h"

#include <algorithm>

namespace peel {

MulticastGroupTable::MulticastGroupTable(const Topology& topo,
                                         std::size_t capacity_per_switch)
    : topo_(&topo), capacity_(capacity_per_switch) {}

std::vector<NodeId> MulticastGroupTable::tree_switches(
    const MulticastTree& tree) const {
  std::unordered_set<NodeId> switches;
  for (LinkId l : tree.links()) {
    const NodeId src = topo_->link(l).src;
    if (is_switch(topo_->kind(src))) switches.insert(src);
  }
  return {switches.begin(), switches.end()};
}

bool MulticastGroupTable::install(std::uint64_t group_id, const MulticastTree& tree) {
  if (groups_.contains(group_id)) return false;
  std::vector<NodeId> switches = tree_switches(tree);
  for (NodeId sw : switches) {
    if (entries_at(sw) >= capacity_) return false;
  }
  for (NodeId sw : switches) ++occupancy_[sw];
  groups_.emplace(group_id, std::move(switches));
  return true;
}

void MulticastGroupTable::remove(std::uint64_t group_id) {
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) return;
  for (NodeId sw : it->second) --occupancy_[sw];
  groups_.erase(it);
}

std::size_t MulticastGroupTable::entries_at(NodeId sw) const {
  const auto it = occupancy_.find(sw);
  return it == occupancy_.end() ? 0 : it->second;
}

std::size_t MulticastGroupTable::max_occupancy() const {
  std::size_t max = 0;
  for (const auto& [sw, n] : occupancy_) max = std::max(max, n);
  return max;
}

std::size_t MulticastGroupTable::total_entries() const {
  std::size_t sum = 0;
  for (const auto& [sw, n] : occupancy_) sum += n;
  return sum;
}

}  // namespace peel
