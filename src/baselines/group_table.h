// Conventional IP-multicast switch state (§1 barrier 2, §5 "IP multicast").
//
// Classic multicast needs one forwarding entry per group at every switch the
// group's tree passes through, and commodity switches expose only a few
// thousand multicast entries [12, 18].  This model admits groups until some
// switch's table fills — quantifying how quickly "thousands of concurrent
// training jobs" exhaust TCAM, the failure mode PEEL's k-1 static rules
// eliminate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/steiner/multicast_tree.h"
#include "src/topology/topology.h"

namespace peel {

class MulticastGroupTable {
 public:
  /// `capacity_per_switch`: multicast entries each switch can hold.
  MulticastGroupTable(const Topology& topo, std::size_t capacity_per_switch);

  /// Attempts to install per-switch entries for a group's tree. Installs
  /// nothing and returns false if any switch on the tree is full (admission
  /// control, as an SDN controller would enforce).
  bool install(std::uint64_t group_id, const MulticastTree& tree);

  /// Removes a group's entries everywhere (no-op for unknown groups).
  void remove(std::uint64_t group_id);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t groups_installed() const noexcept {
    return groups_.size();
  }
  /// Entries currently occupied at one switch.
  [[nodiscard]] std::size_t entries_at(NodeId sw) const;
  /// Highest occupancy across all switches.
  [[nodiscard]] std::size_t max_occupancy() const;
  /// Total entries across the fabric.
  [[nodiscard]] std::size_t total_entries() const;

 private:
  /// Switches (replication points) a tree occupies entries at.
  [[nodiscard]] std::vector<NodeId> tree_switches(const MulticastTree& tree) const;

  const Topology* topo_;
  std::size_t capacity_;
  std::unordered_map<NodeId, std::size_t> occupancy_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> groups_;
};

}  // namespace peel
