#include "src/steiner/tree_repair.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/steiner/layer_peel.h"

namespace peel {

std::vector<LinkId> duplex_edge_pairs(const MulticastTree& tree) {
  std::vector<LinkId> pairs;
  pairs.reserve(tree.link_count());
  for (LinkId l : tree.links()) pairs.push_back(l - (l % 2));
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

TreeRepairResult repair_tree(const Topology& topo, const MulticastTree& tree) {
  TreeRepairResult out;
  const auto& tree_links = tree.links();
  if (std::none_of(tree_links.begin(), tree_links.end(),
                   [&](LinkId l) { return topo.link(l).failed; })) {
    out.tree = tree;
    out.links_reused = tree.link_count();
    return out;
  }
  out.changed = true;
  const NodeId source = tree.source();

  // Survivors: the source-connected portion after the cut. links() stores
  // every parent before its children, so one forward scan that keeps a link
  // iff it is live and its src is still connected finds exactly the nodes
  // that never lost their path from the source.
  std::vector<char> kept(topo.node_count(), 0);
  kept[static_cast<std::size_t>(source)] = 1;
  std::vector<LinkId> kept_links;
  kept_links.reserve(tree_links.size());
  for (LinkId l : tree_links) {
    const Link& lk = topo.link(l);
    if (lk.failed || !kept[static_cast<std::size_t>(lk.src)]) continue;
    kept[static_cast<std::size_t>(lk.dst)] = 1;
    kept_links.push_back(l);
  }

  std::vector<NodeId> orphans;
  for (NodeId d : tree.destinations()) {
    if (!kept[static_cast<std::size_t>(d)]) orphans.push_back(d);
  }

  // Re-peel only the orphans (§2.3 greedy over fresh BFS layers), with the
  // membership set pre-seeded by the survivors: an orphan adjacent to a
  // surviving switch one layer up reattaches with a single link, and only
  // freshly added members ever receive a parent edge.
  std::vector<std::pair<NodeId, NodeId>> parent_edges;  // (parent, child)
  if (!orphans.empty()) {
    const auto dist = live_bfs_distances(topo, source);
    auto layer_of = [&](NodeId n) { return dist[static_cast<std::size_t>(n)]; };
    std::int32_t farthest = 0;
    for (NodeId d : orphans) {
      if (layer_of(d) < 0) {
        throw std::runtime_error("tree repair: destination unreachable: " +
                                 topo.name(d));
      }
      farthest = std::max(farthest, layer_of(d));
    }

    std::vector<char> in_tree = kept;
    std::vector<std::vector<NodeId>> members(
        static_cast<std::size_t>(farthest) + 1);
    for (NodeId d : orphans) {
      auto& flag = in_tree[static_cast<std::size_t>(d)];
      if (!flag) {
        flag = 1;
        members[static_cast<std::size_t>(layer_of(d))].push_back(d);
      }
    }
    parent_edges.reserve(orphans.size());
    std::vector<NodeId> ups_buf;

    for (std::int32_t i = farthest; i >= 1; --i) {
      auto& layer_members = members[static_cast<std::size_t>(i)];
      if (layer_members.empty()) continue;
      std::sort(layer_members.begin(), layer_members.end());

      auto upstream_neighbors = [&](NodeId v) -> const std::vector<NodeId>& {
        ups_buf.clear();
        for (LinkId l : topo.in_links(v)) {
          const Link& lk = topo.link(l);
          if (!lk.failed && layer_of(lk.src) == i - 1) ups_buf.push_back(lk.src);
        }
        return ups_buf;
      };

      std::vector<NodeId> uncovered;
      uncovered.reserve(layer_members.size());
      for (NodeId v : layer_members) {
        const auto& ups = upstream_neighbors(v);
        const bool covered = std::any_of(ups.begin(), ups.end(), [&](NodeId u) {
          return in_tree[static_cast<std::size_t>(u)] != 0;
        });
        if (!covered) uncovered.push_back(v);
      }

      while (!uncovered.empty()) {
        std::unordered_map<NodeId, int> coverage;
        for (NodeId v : uncovered) {
          for (NodeId u : upstream_neighbors(v)) ++coverage[u];
        }
        if (coverage.empty()) {
          throw std::runtime_error(
              "tree repair: no upstream neighbor at layer " +
              std::to_string(i - 1));
        }
        NodeId best = kInvalidNode;
        int best_count = 0;
        for (const auto& [u, c] : coverage) {
          if (c > best_count ||
              (c == best_count && (best == kInvalidNode || u < best))) {
            best = u;
            best_count = c;
          }
        }
        in_tree[static_cast<std::size_t>(best)] = 1;
        members[static_cast<std::size_t>(i - 1)].push_back(best);
        std::erase_if(uncovered, [&](NodeId v) {
          const auto& ups = upstream_neighbors(v);
          return std::find(ups.begin(), ups.end(), best) != ups.end();
        });
      }

      for (NodeId v : layer_members) {
        NodeId parent = kInvalidNode;
        for (NodeId u : upstream_neighbors(v)) {
          if (in_tree[static_cast<std::size_t>(u)] &&
              (parent == kInvalidNode || u < parent)) {
            parent = u;
          }
        }
        parent_edges.emplace_back(parent, v);
      }
    }
  }

  // Assemble the full edge list — surviving links in their original order,
  // reattachment edges root-first — then prune branches that end in a
  // non-destination with no children (subtrees whose destinations all
  // reattached elsewhere).
  struct Edge {
    NodeId src;
    NodeId dst;
    LinkId link;
  };
  std::vector<Edge> edges;
  edges.reserve(kept_links.size() + parent_edges.size());
  for (LinkId l : kept_links) {
    const Link& lk = topo.link(l);
    edges.push_back(Edge{lk.src, lk.dst, l});
  }
  const std::size_t first_new = edges.size();
  for (auto it = parent_edges.rbegin(); it != parent_edges.rend(); ++it) {
    edges.push_back(Edge{it->first, it->second,
                         topo.find_link(it->first, it->second)});
  }

  std::vector<char> is_dest(topo.node_count(), 0);
  for (NodeId d : tree.destinations()) is_dest[static_cast<std::size_t>(d)] = 1;
  std::unordered_map<NodeId, int> child_count;
  std::unordered_map<NodeId, std::size_t> in_edge;  // node -> edge index
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ++child_count[edges[i].src];
    in_edge[edges[i].dst] = i;
  }
  std::vector<char> removed(edges.size(), 0);
  std::vector<NodeId> prune;
  for (const auto& [node, idx] : in_edge) {
    if (!is_dest[static_cast<std::size_t>(node)] && child_count[node] == 0) {
      prune.push_back(node);
    }
  }
  // Processing order does not matter: the removed set is the closure of
  // useless leaves, the same whatever order they pop in.
  while (!prune.empty()) {
    const NodeId n = prune.back();
    prune.pop_back();
    const auto it = in_edge.find(n);
    if (it == in_edge.end()) continue;
    removed[it->second] = 1;
    const NodeId parent = edges[it->second].src;
    in_edge.erase(it);
    if (parent != source && --child_count[parent] == 0 &&
        !is_dest[static_cast<std::size_t>(parent)]) {
      prune.push_back(parent);
    }
  }

  MulticastTree repaired(source, tree.destinations());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (removed[i]) continue;
    repaired.add_link(topo, edges[i].link);
    if (i < first_new) {
      ++out.links_reused;
    } else {
      ++out.links_added;
    }
  }
  out.tree = std::move(repaired);
  return out;
}

}  // namespace peel
