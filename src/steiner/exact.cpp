#include "src/steiner/exact.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

namespace peel {
namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

/// Unit-cost BFS from `origin` over live links, with parent links for path
/// reconstruction (parent[v] = predecessor of v on a shortest path).
struct BfsField {
  std::vector<int> dist;
  std::vector<NodeId> parent;
};

BfsField bfs(const Topology& topo, NodeId origin) {
  BfsField f;
  f.dist.assign(topo.node_count(), kInf);
  f.parent.assign(topo.node_count(), kInvalidNode);
  std::deque<NodeId> queue{origin};
  f.dist[static_cast<std::size_t>(origin)] = 0;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (LinkId l : topo.out_links(cur)) {
      const Link& lk = topo.link(l);
      if (lk.failed) continue;
      auto& d = f.dist[static_cast<std::size_t>(lk.dst)];
      if (d == kInf) {
        d = f.dist[static_cast<std::size_t>(cur)] + 1;
        f.parent[static_cast<std::size_t>(lk.dst)] = cur;
        queue.push_back(lk.dst);
      }
    }
  }
  return f;
}

/// The full Dreyfus–Wagner DP with backtracking state.
struct DreyfusWagner {
  const Topology& topo;
  std::vector<NodeId> terminals;  // deduplicated; the last one is the root
  std::size_t base = 0;           // terminals in the subset universe
  std::vector<BfsField> term_bfs;

  // dp[mask][v]; choice: sub > 0 -> merge of (sub, v) and (mask^sub, v);
  // otherwise pred != invalid -> extend from (mask, pred); otherwise base.
  std::vector<std::vector<int>> dp;
  std::vector<std::vector<std::uint32_t>> sub_choice;
  std::vector<std::vector<NodeId>> pred;

  DreyfusWagner(const Topology& t, NodeId source, std::span<const NodeId> dests,
                int max_terminals)
      : topo(t) {
    terminals.assign(dests.begin(), dests.end());
    terminals.push_back(source);
    std::sort(terminals.begin(), terminals.end());
    terminals.erase(std::unique(terminals.begin(), terminals.end()),
                    terminals.end());
    if (terminals.size() > static_cast<std::size_t>(max_terminals)) {
      throw std::invalid_argument("exact steiner: too many terminals (" +
                                  std::to_string(terminals.size()) + ")");
    }
    base = terminals.size() - 1;
    term_bfs.reserve(terminals.size());
    for (NodeId q : terminals) {
      term_bfs.push_back(bfs(topo, q));
      for (NodeId other : terminals) {
        if (term_bfs.back().dist[static_cast<std::size_t>(other)] >= kInf) {
          throw std::runtime_error("exact steiner: disconnected terminals");
        }
      }
    }
  }

  void solve() {
    const std::size_t n = topo.node_count();
    const std::size_t num_masks = std::size_t{1} << base;
    dp.assign(num_masks, std::vector<int>(n, kInf));
    sub_choice.assign(num_masks, std::vector<std::uint32_t>(n, 0));
    pred.assign(num_masks, std::vector<NodeId>(n, kInvalidNode));

    for (std::size_t i = 0; i < base; ++i) {
      dp[std::size_t{1} << i] = term_bfs[i].dist;
    }

    for (std::size_t mask = 1; mask < num_masks; ++mask) {
      auto& d = dp[mask];
      if ((mask & (mask - 1)) != 0) {  // merge step
        for (std::size_t sub = (mask - 1) & mask; sub > (mask ^ sub);
             sub = (sub - 1) & mask) {
          const auto& a = dp[sub];
          const auto& b = dp[mask ^ sub];
          for (std::size_t v = 0; v < n; ++v) {
            if (a[v] >= kInf || b[v] >= kInf) continue;
            const int merged = a[v] + b[v];
            if (merged < d[v]) {
              d[v] = merged;
              sub_choice[mask][v] = static_cast<std::uint32_t>(sub);
              pred[mask][v] = kInvalidNode;
            }
          }
        }
      }
      // Extend step: bucketed unit-weight relaxation.
      std::vector<std::vector<NodeId>> buckets;
      for (std::size_t v = 0; v < n; ++v) {
        if (d[v] >= kInf) continue;
        const auto c = static_cast<std::size_t>(d[v]);
        if (buckets.size() <= c) buckets.resize(c + 1);
        buckets[c].push_back(static_cast<NodeId>(v));
      }
      for (std::size_t c = 0; c < buckets.size(); ++c) {
        for (std::size_t i = 0; i < buckets[c].size(); ++i) {
          const NodeId cur = buckets[c][i];
          if (d[static_cast<std::size_t>(cur)] != static_cast<int>(c)) continue;
          for (LinkId l : topo.out_links(cur)) {
            const Link& lk = topo.link(l);
            if (lk.failed) continue;
            const auto next = static_cast<std::size_t>(lk.dst);
            if (d[next] > static_cast<int>(c) + 1) {
              d[next] = static_cast<int>(c) + 1;
              sub_choice[mask][next] = 0;
              pred[mask][next] = cur;
              const auto nc = c + 1;
              if (buckets.size() <= nc) buckets.resize(nc + 1);
              buckets[nc].push_back(lk.dst);
            }
          }
        }
      }
    }
  }

  [[nodiscard]] int cost() const {
    return dp[(std::size_t{1} << base) - 1]
             [static_cast<std::size_t>(terminals[base])];
  }

  /// Collects the optimal tree's undirected edges into `edges`.
  void collect(std::size_t mask, NodeId v,
               std::vector<std::pair<NodeId, NodeId>>& edges) const {
    const auto vi = static_cast<std::size_t>(v);
    const NodeId p = pred[mask][vi];
    if (p != kInvalidNode) {
      edges.emplace_back(p, v);
      collect(mask, p, edges);
      return;
    }
    const std::uint32_t sub = sub_choice[mask][vi];
    if (sub != 0) {
      collect(sub, v, edges);
      collect(mask ^ sub, v, edges);
      return;
    }
    // Base: mask is a singleton {i}; walk the BFS shortest path back to q_i.
    int idx = -1;
    for (std::size_t i = 0; i < base; ++i) {
      if (mask == (std::size_t{1} << i)) idx = static_cast<int>(i);
    }
    if (idx < 0) {
      throw std::logic_error("exact steiner: malformed backtrack state");
    }
    NodeId cur = v;
    while (cur != terminals[static_cast<std::size_t>(idx)]) {
      const NodeId parent =
          term_bfs[static_cast<std::size_t>(idx)].parent[static_cast<std::size_t>(cur)];
      edges.emplace_back(parent, cur);
      cur = parent;
    }
  }
};

}  // namespace

int exact_steiner_cost(const Topology& topo, NodeId source,
                       std::span<const NodeId> destinations, int max_terminals) {
  DreyfusWagner dw(topo, source, destinations, max_terminals);
  if (dw.terminals.size() <= 1) return 0;
  dw.solve();
  return dw.cost();
}

MulticastTree exact_steiner_tree(const Topology& topo, NodeId source,
                                 std::span<const NodeId> destinations,
                                 int max_terminals) {
  MulticastTree tree(source, {destinations.begin(), destinations.end()});
  DreyfusWagner dw(topo, source, destinations, max_terminals);
  if (dw.terminals.size() <= 1) return tree;
  dw.solve();

  std::vector<std::pair<NodeId, NodeId>> edges;
  dw.collect((std::size_t{1} << dw.base) - 1, dw.terminals[dw.base], edges);

  // Deduplicate undirected edges (ties in the DP can revisit a path), then
  // orient away from the source by BFS over the edge set.
  std::vector<std::pair<NodeId, NodeId>> unique_edges;
  for (auto [a, b] : edges) {
    if (a > b) std::swap(a, b);
    unique_edges.emplace_back(a, b);
  }
  std::sort(unique_edges.begin(), unique_edges.end());
  unique_edges.erase(std::unique(unique_edges.begin(), unique_edges.end()),
                     unique_edges.end());

  std::vector<std::vector<NodeId>> adj(topo.node_count());
  for (const auto& [a, b] : unique_edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::vector<char> seen(topo.node_count(), 0);
  seen[static_cast<std::size_t>(source)] = 1;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (NodeId next : adj[static_cast<std::size_t>(cur)]) {
      if (seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = 1;
      tree.add_link(topo, topo.find_link(cur, next));
      queue.push_back(next);
    }
  }
  return tree;
}

}  // namespace peel
