// Optimal multicast trees for failure-free (symmetric) Clos fabrics
// (Lemma 2.1 and its fat-tree extension).
//
// In a symmetric fabric every ToR reaches every other ToR through any core,
// so the core tier collapses into a logical super-node and the bandwidth-
// optimal broadcast tree is unique up to which physical core/aggregation
// switch realizes that super-node: one copy climbs from the source to the
// (lowest sufficient) common ancestor tier, then fans out — once per
// destination pod, once per destination ToR, once per destination host, once
// per destination GPU.  No tree link is traversed twice, which is what the
// "Optimal" baseline in Figures 1 and 5–6 measures.
#pragma once

#include <cstdint>
#include <span>

#include "src/steiner/multicast_tree.h"
#include "src/topology/fat_tree.h"
#include "src/topology/leaf_spine.h"

namespace peel {

/// Optimal broadcast tree on a failure-free fat-tree. `selector` picks which
/// aggregation/core index realizes the super-node (vary it per collective to
/// spread load, e.g. from an ECMP hash). Endpoints may be GPUs or hosts.
/// Throws std::runtime_error if a required link is failed (the fabric is not
/// symmetric); use layer_peel_tree for asymmetric fabrics.
[[nodiscard]] MulticastTree optimal_fat_tree_tree(const FatTree& ft, NodeId source,
                                                  std::span<const NodeId> destinations,
                                                  std::uint64_t selector = 0);

/// Optimal broadcast tree on a failure-free leaf–spine (Lemma 2.1).
[[nodiscard]] MulticastTree optimal_leaf_spine_tree(const LeafSpine& ls, NodeId source,
                                                    std::span<const NodeId> destinations,
                                                    std::uint64_t selector = 0);

/// Lower bound on any broadcast tree's link count in a symmetric fabric:
/// every distinct destination GPU, host, ToR, and pod must receive exactly
/// one copy over its unique attaching link, plus the source's climb to the
/// lowest tier that covers all destinations.
[[nodiscard]] std::size_t symmetric_optimal_link_count(const FatTree& ft, NodeId source,
                                                       std::span<const NodeId> destinations);

}  // namespace peel
