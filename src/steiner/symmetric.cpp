#include "src/steiner/symmetric.h"

#include <map>
#include <stdexcept>
#include <vector>

namespace peel {
namespace {

/// Groups destination endpoints by host, ToR, and pod.
struct DestIndex {
  // host -> destination GPUs on it (empty vector if the host itself is the
  // destination endpoint).
  std::map<NodeId, std::vector<NodeId>> by_host;
  // tor -> destination hosts under it.
  std::map<NodeId, std::vector<NodeId>> by_tor;
  // pod -> destination tors in it.
  std::map<std::int32_t, std::vector<NodeId>> by_pod;
};

DestIndex index_destinations(const Topology& topo, std::span<const NodeId> dests) {
  DestIndex idx;
  for (NodeId d : dests) {
    NodeId host = d;
    if (topo.kind(d) == NodeKind::Gpu) {
      host = topo.host_of(d);
      idx.by_host[host].push_back(d);
    } else if (topo.kind(d) == NodeKind::Host) {
      idx.by_host.try_emplace(host);
    } else {
      throw std::invalid_argument("destination must be a GPU or host: " + topo.name(d));
    }
  }
  for (const auto& [host, gpus] : idx.by_host) {
    const NodeId tor = topo.tor_of(host);
    auto& hosts = idx.by_tor[tor];
    hosts.push_back(host);
  }
  for (const auto& [tor, hosts] : idx.by_tor) {
    idx.by_pod[topo.node(tor).pod].push_back(tor);
  }
  return idx;
}

LinkId live_link_or_throw(const Topology& topo, NodeId a, NodeId b) {
  const LinkId l = topo.find_link(a, b);
  if (l == kInvalidLink) {
    throw std::runtime_error("symmetric tree: link unavailable (" + topo.name(a) +
                             " -> " + topo.name(b) + "); fabric is asymmetric");
  }
  return l;
}

/// Resolves the source to (endpoint, host); endpoint==host when there is no
/// GPU tier.
std::pair<NodeId, NodeId> source_host(const Topology& topo, NodeId source) {
  if (topo.kind(source) == NodeKind::Gpu) return {source, topo.host_of(source)};
  if (topo.kind(source) == NodeKind::Host) return {source, source};
  throw std::invalid_argument("source must be a GPU or host: " + topo.name(source));
}

/// Adds tor->host->gpu fan-out links for a destination host.  The source's
/// own host is skipped entirely: it and its destination GPUs are attached
/// from the source side before the fabric fan-out is built.
void attach_host(const Topology& topo, MulticastTree& tree, const DestIndex& idx,
                 NodeId tor, NodeId host, NodeId src_host) {
  if (host == src_host) return;
  tree.add_link(topo, live_link_or_throw(topo, tor, host));
  auto it = idx.by_host.find(host);
  for (NodeId gpu : it->second) {
    tree.add_link(topo, live_link_or_throw(topo, host, gpu));
  }
}

}  // namespace

MulticastTree optimal_fat_tree_tree(const FatTree& ft, NodeId source,
                                    std::span<const NodeId> destinations,
                                    std::uint64_t selector) {
  const Topology& topo = ft.topo;
  const auto [src_endpoint, src_host] = source_host(topo, source);
  const NodeId src_tor = topo.tor_of(src_host);
  const std::int32_t src_pod = topo.node(src_tor).pod;
  const int half = ft.config.k / 2;
  const int agg_index = static_cast<int>(selector % static_cast<std::uint64_t>(half));
  const int core_index =
      static_cast<int>((selector / static_cast<std::uint64_t>(half)) %
                       static_cast<std::uint64_t>(half));

  DestIndex idx = index_destinations(topo, destinations);
  MulticastTree tree(source, {destinations.begin(), destinations.end()});

  const bool beyond_host =
      idx.by_host.size() > 1 || (idx.by_host.size() == 1 && !idx.by_host.contains(src_host));
  const bool beyond_tor =
      idx.by_tor.size() > 1 || (idx.by_tor.size() == 1 && !idx.by_tor.contains(src_tor));
  const bool beyond_pod =
      idx.by_pod.size() > 1 || (idx.by_pod.size() == 1 && !idx.by_pod.contains(src_pod));

  if (src_endpoint != src_host) {
    tree.add_link(topo, live_link_or_throw(topo, src_endpoint, src_host));
  }
  // Destination GPUs sharing the source host.
  if (auto it = idx.by_host.find(src_host); it != idx.by_host.end()) {
    for (NodeId gpu : it->second) {
      tree.add_link(topo, live_link_or_throw(topo, src_host, gpu));
    }
  }
  if (!beyond_host) return tree;

  tree.add_link(topo, live_link_or_throw(topo, src_host, src_tor));
  if (auto it = idx.by_tor.find(src_tor); it != idx.by_tor.end()) {
    for (NodeId host : it->second) {
      attach_host(topo, tree, idx, src_tor, host, src_host);
    }
  }
  if (!beyond_tor) return tree;

  const NodeId src_agg = ft.agg_at(src_pod, agg_index);
  tree.add_link(topo, live_link_or_throw(topo, src_tor, src_agg));

  auto attach_pod_tors = [&](NodeId agg, std::int32_t pod) {
    auto it = idx.by_pod.find(pod);
    if (it == idx.by_pod.end()) return;
    for (NodeId tor : it->second) {
      if (tor == src_tor) continue;  // its hosts were attached on the way up
      tree.add_link(topo, live_link_or_throw(topo, agg, tor));
      for (NodeId host : idx.by_tor.at(tor)) {
        attach_host(topo, tree, idx, tor, host, src_host);
      }
    }
  };
  attach_pod_tors(src_agg, src_pod);
  if (!beyond_pod) return tree;

  const NodeId core = ft.core_at(agg_index, core_index);
  tree.add_link(topo, live_link_or_throw(topo, src_agg, core));
  for (const auto& [pod, tors] : idx.by_pod) {
    if (pod == src_pod) continue;
    const NodeId agg = ft.agg_at(pod, agg_index);
    tree.add_link(topo, live_link_or_throw(topo, core, agg));
    attach_pod_tors(agg, pod);
  }
  return tree;
}

MulticastTree optimal_leaf_spine_tree(const LeafSpine& ls, NodeId source,
                                      std::span<const NodeId> destinations,
                                      std::uint64_t selector) {
  const Topology& topo = ls.topo;
  const auto [src_endpoint, src_host] = source_host(topo, source);
  const NodeId src_leaf = topo.tor_of(src_host);

  DestIndex idx = index_destinations(topo, destinations);
  MulticastTree tree(source, {destinations.begin(), destinations.end()});

  const bool beyond_host =
      idx.by_host.size() > 1 || (idx.by_host.size() == 1 && !idx.by_host.contains(src_host));
  const bool beyond_leaf =
      idx.by_tor.size() > 1 || (idx.by_tor.size() == 1 && !idx.by_tor.contains(src_leaf));

  if (src_endpoint != src_host) {
    tree.add_link(topo, live_link_or_throw(topo, src_endpoint, src_host));
  }
  if (auto it = idx.by_host.find(src_host); it != idx.by_host.end()) {
    for (NodeId gpu : it->second) {
      tree.add_link(topo, live_link_or_throw(topo, src_host, gpu));
    }
  }
  if (!beyond_host) return tree;

  tree.add_link(topo, live_link_or_throw(topo, src_host, src_leaf));
  if (auto it = idx.by_tor.find(src_leaf); it != idx.by_tor.end()) {
    for (NodeId host : it->second) {
      attach_host(topo, tree, idx, src_leaf, host, src_host);
    }
  }
  if (!beyond_leaf) return tree;

  const NodeId spine =
      ls.spines[static_cast<std::size_t>(selector % ls.spines.size())];
  tree.add_link(topo, live_link_or_throw(topo, src_leaf, spine));
  for (const auto& [leaf, hosts] : idx.by_tor) {
    if (leaf == src_leaf) continue;
    tree.add_link(topo, live_link_or_throw(topo, spine, leaf));
    for (NodeId host : hosts) {
      attach_host(topo, tree, idx, leaf, host, src_host);
    }
  }
  return tree;
}

std::size_t symmetric_optimal_link_count(const FatTree& ft, NodeId source,
                                         std::span<const NodeId> destinations) {
  const Topology& topo = ft.topo;
  const auto [src_endpoint, src_host] = source_host(topo, source);
  const NodeId src_tor = topo.tor_of(src_host);
  const std::int32_t src_pod = topo.node(src_tor).pod;

  const DestIndex idx = index_destinations(topo, destinations);
  std::size_t dest_gpus = 0;
  for (const auto& [host, gpus] : idx.by_host) dest_gpus += gpus.size();
  const std::size_t dest_hosts_excl_src =
      idx.by_host.size() - (idx.by_host.contains(src_host) ? 1 : 0);
  const std::size_t dest_tors_excl_src =
      idx.by_tor.size() - (idx.by_tor.contains(src_tor) ? 1 : 0);
  const std::size_t dest_pods_excl_src =
      idx.by_pod.size() - (idx.by_pod.contains(src_pod) ? 1 : 0);

  const bool beyond_host = dest_hosts_excl_src > 0;
  const bool beyond_tor = dest_tors_excl_src > 0;
  const bool beyond_pod = dest_pods_excl_src > 0;

  std::size_t links = dest_gpus + dest_hosts_excl_src + dest_tors_excl_src +
                      dest_pods_excl_src;
  if (src_endpoint != src_host) ++links;  // source GPU -> host
  if (beyond_host) ++links;               // host -> ToR
  if (beyond_tor) ++links;                // ToR -> agg
  if (beyond_pod) ++links;                // agg -> core
  return links;
}

}  // namespace peel
