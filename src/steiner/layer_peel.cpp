#include "src/steiner/layer_peel.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace peel {

std::vector<std::int32_t> live_bfs_distances(const Topology& topo,
                                             NodeId source) {
  std::vector<std::int32_t> dist(topo.node_count(), -1);
  std::deque<NodeId> queue{source};
  dist[static_cast<std::size_t>(source)] = 0;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (LinkId l : topo.out_links(cur)) {
      const Link& lk = topo.link(l);
      if (lk.failed) continue;
      auto& d = dist[static_cast<std::size_t>(lk.dst)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(cur)] + 1;
        queue.push_back(lk.dst);
      }
    }
  }
  return dist;
}

int farthest_destination_distance(const Topology& topo, NodeId source,
                                  std::span<const NodeId> destinations) {
  const auto dist = live_bfs_distances(topo, source);
  int farthest = 0;
  for (NodeId d : destinations) {
    const auto dd = dist[static_cast<std::size_t>(d)];
    if (dd < 0) {
      throw std::runtime_error("destination unreachable: " + topo.name(d));
    }
    farthest = std::max(farthest, static_cast<int>(dd));
  }
  return farthest;
}

MulticastTree layer_peel_tree(const Topology& topo, NodeId source,
                              std::span<const NodeId> destinations) {
  const auto dist = live_bfs_distances(topo, source);
  auto layer_of = [&](NodeId n) { return dist[static_cast<std::size_t>(n)]; };

  std::int32_t farthest = 0;
  std::vector<NodeId> dests(destinations.begin(), destinations.end());
  for (NodeId d : dests) {
    if (d == source) {
      throw std::runtime_error("source listed among destinations");
    }
    if (layer_of(d) < 0) {
      throw std::runtime_error("destination unreachable: " + topo.name(d));
    }
    farthest = std::max(farthest, layer_of(d));
  }

  // Membership set T = {source} ∪ D, grown as the greedy adds switches.
  std::vector<char> in_tree(topo.node_count(), 0);
  in_tree[static_cast<std::size_t>(source)] = 1;
  // members[i] = tree members at hop layer i (deduplicated).
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(farthest) + 1);
  for (NodeId d : dests) {
    auto& flag = in_tree[static_cast<std::size_t>(d)];
    if (!flag) {
      flag = 1;
      members[static_cast<std::size_t>(layer_of(d))].push_back(d);
    }
  }

  MulticastTree tree(source, dests);
  std::vector<std::pair<NodeId, NodeId>> parent_edges;  // (parent, child)
  parent_edges.reserve(dests.size());
  // Reused across all upstream_neighbors calls: the helper runs
  // O(|layer|^2) times inside the cover loop, and a fresh vector per call
  // was pure allocation churn on recovery-heavy flap runs.
  std::vector<NodeId> ups_buf;

  // Peel from the outermost layer inward. The pass for layer i may add
  // switches at layer i-1, which the next iteration then connects.
  for (std::int32_t i = farthest; i >= 1; --i) {
    auto& layer_members = members[static_cast<std::size_t>(i)];
    if (layer_members.empty()) continue;
    std::sort(layer_members.begin(), layer_members.end());

    // A member is covered once some in-neighbor one layer closer to the
    // source is in T.
    auto upstream_neighbors = [&](NodeId v) -> const std::vector<NodeId>& {
      ups_buf.clear();
      for (LinkId l : topo.in_links(v)) {
        const Link& lk = topo.link(l);
        if (!lk.failed && layer_of(lk.src) == i - 1) ups_buf.push_back(lk.src);
      }
      return ups_buf;
    };

    std::vector<NodeId> uncovered;
    uncovered.reserve(layer_members.size());
    for (NodeId v : layer_members) {
      const auto& ups = upstream_neighbors(v);
      const bool covered = std::any_of(ups.begin(), ups.end(), [&](NodeId u) {
        return in_tree[static_cast<std::size_t>(u)] != 0;
      });
      if (!covered) uncovered.push_back(v);
    }

    // Greedy set cover: repeatedly add the layer-(i-1) switch adjacent to the
    // most uncovered members.
    while (!uncovered.empty()) {
      std::unordered_map<NodeId, int> coverage;
      for (NodeId v : uncovered) {
        for (NodeId u : upstream_neighbors(v)) ++coverage[u];
      }
      if (coverage.empty()) {
        throw std::runtime_error("layer peel: no upstream neighbor at layer " +
                                 std::to_string(i - 1));
      }
      NodeId best = kInvalidNode;
      int best_count = 0;
      for (const auto& [u, c] : coverage) {
        if (c > best_count || (c == best_count && (best == kInvalidNode || u < best))) {
          best = u;
          best_count = c;
        }
      }
      in_tree[static_cast<std::size_t>(best)] = 1;
      members[static_cast<std::size_t>(i - 1)].push_back(best);
      std::erase_if(uncovered, [&](NodeId v) {
        const auto& ups = upstream_neighbors(v);
        return std::find(ups.begin(), ups.end(), best) != ups.end();
      });
    }

    // Attach every member of this layer to its lowest-id tree parent.
    for (NodeId v : layer_members) {
      NodeId parent = kInvalidNode;
      for (NodeId u : upstream_neighbors(v)) {
        if (in_tree[static_cast<std::size_t>(u)] && (parent == kInvalidNode || u < parent)) {
          parent = u;
        }
      }
      parent_edges.emplace_back(parent, v);
    }
  }

  // parent_edges were discovered outermost-first; add them root-first so each
  // child's parent is already in the tree.
  for (auto it = parent_edges.rbegin(); it != parent_edges.rend(); ++it) {
    tree.add_link(topo, topo.find_link(it->first, it->second));
  }
  return tree;
}

}  // namespace peel
