#include "src/steiner/multicast_tree.h"

#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace peel {

void MulticastTree::add_link(const Topology& topo, LinkId l) {
  if (l == kInvalidLink) throw std::logic_error("MulticastTree: invalid link");
  const Link& lk = topo.link(l);
  if (lk.failed) {
    throw std::logic_error("MulticastTree: adding failed link " + topo.name(lk.src) +
                           " -> " + topo.name(lk.dst));
  }
  if (!contains(lk.src)) {
    throw std::logic_error("MulticastTree: parent not in tree: " + topo.name(lk.src));
  }
  if (in_link_.contains(lk.dst) || lk.dst == source_) {
    throw std::logic_error("MulticastTree: node already attached: " + topo.name(lk.dst));
  }
  links_.push_back(l);
  children_[lk.src].push_back(l);
  in_link_.emplace(lk.dst, l);
}

std::span<const LinkId> MulticastTree::out_links_of(NodeId n) const {
  auto it = children_.find(n);
  if (it == children_.end()) return {};
  return it->second;
}

LinkId MulticastTree::in_link_of(NodeId n) const {
  auto it = in_link_.find(n);
  return it == in_link_.end() ? kInvalidLink : it->second;
}

std::size_t MulticastTree::switch_count(const Topology& topo) const {
  std::unordered_set<NodeId> switches;
  for (LinkId l : links_) {
    const Link& lk = topo.link(l);
    if (is_switch(topo.kind(lk.src))) switches.insert(lk.src);
    if (is_switch(topo.kind(lk.dst))) switches.insert(lk.dst);
  }
  return switches.size();
}

std::vector<NodeId> MulticastTree::nodes() const {
  std::vector<NodeId> out;
  out.push_back(source_);
  out.reserve(in_link_.size() + 1);
  for (const auto& [node, link] : in_link_) out.push_back(node);
  return out;
}

MulticastTree::Validation MulticastTree::validate(const Topology& topo) const {
  Validation v;
  auto fail = [&](std::string msg) {
    v.ok = false;
    v.error = std::move(msg);
    return v;
  };
  if (source_ == kInvalidNode) return fail("no source");

  for (LinkId l : links_) {
    if (topo.link(l).failed) return fail("tree uses failed link");
  }
  // in_link_ construction already guarantees unique in-links; check
  // reachability (and thereby acyclicity: |links| == reachable - 1).
  std::unordered_set<NodeId> reached{source_};
  std::deque<NodeId> queue{source_};
  std::size_t traversed = 0;
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (LinkId l : out_links_of(cur)) {
      ++traversed;
      const NodeId next = topo.link(l).dst;
      if (!reached.insert(next).second) return fail("cycle or duplicate attach");
      queue.push_back(next);
    }
  }
  if (traversed != links_.size()) return fail("unreachable links in tree");
  if (reached.size() != links_.size() + 1) return fail("tree is not connected");
  for (NodeId d : destinations_) {
    if (!reached.contains(d)) {
      return fail("destination not covered: " + topo.name(d));
    }
  }
  return v;
}

}  // namespace peel
