// Incremental repair of layer-peeling multicast trees after link failures.
//
// Lemma 2.1's layering survives a failure untouched everywhere the failure
// did not cut the tree: only the subtrees hanging below a dead link lose
// their connection to the source. repair_tree keeps the surviving
// source-connected portion of the tree verbatim and re-peels (the §2.3
// greedy, seeded with the survivors as already-covered members) only the
// destinations the cut orphaned — localized control-plane update instead of
// a from-scratch rebuild. Every repaired destination sits no deeper than a
// from-scratch layer_peel_tree would place it: surviving nodes keep their
// pre-fault depth (<= their post-fault BFS layer, since failures only
// lengthen shortest paths), and reattachment edges descend one fresh BFS
// layer per hop, exactly like the scratch build.
#pragma once

#include <vector>

#include "src/steiner/multicast_tree.h"
#include "src/topology/topology.h"

namespace peel {

struct TreeRepairResult {
  MulticastTree tree;
  /// False when no tree link failed: `tree` is a verbatim copy of the input.
  bool changed = false;
  std::size_t links_reused = 0;  ///< surviving links kept (post-prune)
  std::size_t links_added = 0;   ///< fresh reattachment links (post-prune)
};

/// Patches `tree` against the current failure set of `topo`. Surviving
/// source-connected links are reused; orphaned destinations are reattached
/// by the layer-peeling greedy; branches left serving no destination are
/// pruned. Deterministic (lowest-id ties, like layer_peel_tree). Throws
/// std::runtime_error when an orphaned destination is unreachable over live
/// links — exactly the inputs for which layer_peel_tree would throw too.
[[nodiscard]] TreeRepairResult repair_tree(const Topology& topo,
                                           const MulticastTree& tree);

/// Duplex-pair representatives (even link ids) the tree traverses — the edge
/// set TreePlanCache indexes cached plans under.
[[nodiscard]] std::vector<LinkId> duplex_edge_pairs(const MulticastTree& tree);

}  // namespace peel
