// Multicast (Steiner) tree representation shared by all tree-construction
// algorithms and the simulator's replicating data plane.
//
// Links are stored oriented in the direction data flows (away from the
// source).  Every non-source tree node has exactly one in-link; switches
// replicate a packet onto all of their out-links.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/topology/topology.h"

namespace peel {

class MulticastTree {
 public:
  MulticastTree() = default;
  MulticastTree(NodeId source, std::vector<NodeId> destinations)
      : source_(source), destinations_(std::move(destinations)) {}

  /// Adds a directed tree link (data direction). The link's src must already
  /// be in the tree (or be the source); its dst must not have an in-link yet.
  /// Throws std::logic_error on violations, so construction bugs fail fast.
  void add_link(const Topology& topo, LinkId l);

  [[nodiscard]] NodeId source() const noexcept { return source_; }
  [[nodiscard]] const std::vector<NodeId>& destinations() const noexcept {
    return destinations_;
  }
  [[nodiscard]] const std::vector<LinkId>& links() const noexcept { return links_; }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

  [[nodiscard]] bool contains(NodeId n) const {
    return n == source_ || in_link_.contains(n);
  }

  /// Out-links (children) of a tree node; empty for leaves.
  [[nodiscard]] std::span<const LinkId> out_links_of(NodeId n) const;

  /// In-link of a non-source tree node, kInvalidLink for the source or
  /// non-members.
  [[nodiscard]] LinkId in_link_of(NodeId n) const;

  /// Number of distinct switch nodes in the tree (the |T| the paper's
  /// Lemma 2.3 bounds).
  [[nodiscard]] std::size_t switch_count(const Topology& topo) const;

  /// All nodes in the tree (source, switches, destinations).
  [[nodiscard]] std::vector<NodeId> nodes() const;

  struct Validation {
    bool ok = true;
    std::string error;
  };

  /// Checks the tree is loop-free, every link is live, every non-source node
  /// has exactly one in-link whose src is in the tree, and every destination
  /// is reachable from the source along tree links.
  [[nodiscard]] Validation validate(const Topology& topo) const;

 private:
  NodeId source_ = kInvalidNode;
  std::vector<NodeId> destinations_;
  std::vector<LinkId> links_;
  std::unordered_map<NodeId, std::vector<LinkId>> children_;
  std::unordered_map<NodeId, LinkId> in_link_;
};

}  // namespace peel
