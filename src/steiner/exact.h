// Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program.
//
// Exponential in the terminal count (O(3^t·n + 2^t·n^2)) and therefore only
// used to validate the layer-peeling heuristic's quality on small instances
// (tests and the tree-quality bench), mirroring the paper's "within 1.4% of
// the Steiner optimum" claim.  Edges are the live duplex pairs, unit cost.
#pragma once

#include <span>

#include "src/steiner/multicast_tree.h"
#include "src/topology/topology.h"

namespace peel {

/// Minimum number of edges of any tree spanning {source} ∪ destinations over
/// live links (treated as undirected, unit cost).  Throws
/// std::invalid_argument if there are more than `max_terminals` distinct
/// terminals, and std::runtime_error if a terminal is unreachable.
[[nodiscard]] int exact_steiner_cost(const Topology& topo, NodeId source,
                                     std::span<const NodeId> destinations,
                                     int max_terminals = 14);

/// Reconstructs an optimal tree (link_count() == exact_steiner_cost), rooted
/// at `source` with links oriented in the data-flow direction.  Same
/// complexity and limits as the cost query; use layer_peel_tree in anything
/// latency-sensitive.
[[nodiscard]] MulticastTree exact_steiner_tree(const Topology& topo, NodeId source,
                                               std::span<const NodeId> destinations,
                                               int max_terminals = 14);

}  // namespace peel
