// Layer-peeling greedy Steiner heuristic for asymmetric Clos fabrics (§2.3).
//
// Nodes are bucketed into hop layers by BFS distance from the source over
// live links.  Peeling from the outermost layer inward, whenever some
// tree-member at layer i+1 has no tree-member neighbor at layer i, the
// algorithm greedily adds the layer-i switch that covers the most such
// uncovered members — the classical set-cover heuristic constrained to a
// layered, loop-free shape.  The result is an O(min(F, |D|))-approximation
// (Theorem 2.5), where F is the farthest destination's hop distance.
#pragma once

#include <span>

#include "src/steiner/multicast_tree.h"
#include "src/topology/topology.h"

namespace peel {

/// Builds the layer-peeling tree from `source` to `destinations` over live
/// links. Throws std::runtime_error if some destination is unreachable.
/// Deterministic: ties in the greedy choice break toward the lowest node id.
[[nodiscard]] MulticastTree layer_peel_tree(const Topology& topo, NodeId source,
                                            std::span<const NodeId> destinations);

/// The paper's F: hop distance from the source to its farthest destination.
[[nodiscard]] int farthest_destination_distance(const Topology& topo, NodeId source,
                                                std::span<const NodeId> destinations);

/// BFS hop distances from `source` over live links (-1 = unreachable) — the
/// layer field both layer_peel_tree and repair_tree peel against.
[[nodiscard]] std::vector<std::int32_t> live_bfs_distances(const Topology& topo,
                                                           NodeId source);

}  // namespace peel
